//! The append-log backend: today's flat-file behavior expressed as
//! trait operations.
//!
//! * **Log namespaces** live at `<root>/<ns>` as one record per line:
//!   `k=<key> c=<fnv1a-hex> <payload>` with `\`, LF and CR escaped in
//!   the payload, so JSON payloads stay greppable. Appends are flushed
//!   per line; a crash can tear only the final line, which is dropped
//!   on open. Files written before this format existed (bare JSONL
//!   flight journals) are still read: a line without the `k=` prefix
//!   is a legacy record whose key is its position.
//! * **Snapshot namespaces** are the classic generation pair: the
//!   newest payload verbatim at `<root>/<ns>`, older generations at
//!   `<ns>.bak`, `<ns>.bak2`, … Each append writes a temp file, fsyncs
//!   it, demotes the chain, renames into place, and fsyncs the
//!   directory — the missing directory fsync was the durability hole
//!   in the old hand-rolled path. Generation *order* is durable; key
//!   numerals are reassigned on open.

use crate::{
    fnv1a, sync_dir, validate_ns, BatchEntry, NamespaceKind, NamespaceProfile, Pruned, Record,
    Result, StorageBackend, StorageError,
};
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::Mutex;

/// One parsed log record's location in the file.
#[derive(Debug, Clone, Copy)]
struct Slot {
    offset: u64,
    line_len: u32,
    payload_len: u32,
}

#[derive(Debug)]
struct LogState {
    file: File,
    file_len: u64,
    slots: BTreeMap<u64, Slot>,
}

#[derive(Debug)]
struct SnapState {
    /// Retained generations oldest → newest: `(key, age)` where age 0
    /// is the bare primary file, 1 is `.bak`, 2 is `.bak2`, … Ages are
    /// strictly decreasing (the newest generation is the primary), but
    /// not necessarily contiguous — a crash between the demotion
    /// rename and the final rename leaves `.bak` without a primary.
    gens: Vec<(u64, usize)>,
    next_gen: u64,
}

#[derive(Debug)]
enum NsState {
    Log(LogState),
    Snapshot(SnapState),
}

#[derive(Debug)]
struct Namespace {
    profile: NamespaceProfile,
    state: NsState,
}

/// The flat-file [`StorageBackend`]. See the module docs.
#[derive(Debug)]
pub struct AppendLogBackend {
    root: PathBuf,
    spaces: Mutex<BTreeMap<String, Namespace>>,
}

fn escape(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len());
    for &b in payload {
        match b {
            b'\\' => out.extend_from_slice(b"\\\\"),
            b'\n' => out.extend_from_slice(b"\\n"),
            b'\r' => out.extend_from_slice(b"\\r"),
            _ => out.push(b),
        }
    }
    out
}

fn unescape(line: &[u8]) -> Option<Vec<u8>> {
    let mut out = Vec::with_capacity(line.len());
    let mut it = line.iter();
    while let Some(&b) = it.next() {
        if b != b'\\' {
            out.push(b);
            continue;
        }
        match it.next() {
            Some(b'\\') => out.push(b'\\'),
            Some(b'n') => out.push(b'\n'),
            Some(b'r') => out.push(b'\r'),
            _ => return None,
        }
    }
    Some(out)
}

/// Decodes one complete journal line as written by an
/// [`AppendLogBackend`] log namespace: a keyed `k=.. c=.. <payload>`
/// line yields its unescaped payload, a legacy bare line passes through
/// verbatim. Returns `None` for a mangled keyed line or a payload that
/// is not UTF-8 — callers on best-effort read paths skip those.
pub fn decode_line_payload(line: &str) -> Option<String> {
    let (_, payload) = decode_line(line.as_bytes()).ok()?;
    String::from_utf8(payload).ok()
}

fn encode_line(key: u64, payload: &[u8]) -> Vec<u8> {
    let mut line = format!("k={key} c={:08x} ", fnv1a(payload)).into_bytes();
    line.extend_from_slice(&escape(payload));
    line.push(b'\n');
    line
}

/// Decodes one complete line (without its newline). `None` payload
/// means the line is in the legacy bare format.
fn decode_line(line: &[u8]) -> std::result::Result<(Option<u64>, Vec<u8>), String> {
    if !line.starts_with(b"k=") {
        // Legacy record: the whole line is the payload.
        return Ok((None, line.to_vec()));
    }
    let text_end = line.len();
    let key_end = line[..text_end]
        .iter()
        .position(|&b| b == b' ')
        .ok_or("missing key terminator")?;
    let key: u64 = std::str::from_utf8(&line[2..key_end])
        .ok()
        .and_then(|s| s.parse().ok())
        .ok_or("unparsable key")?;
    let rest = &line[key_end + 1..];
    if !rest.starts_with(b"c=") {
        return Err("missing checksum field".to_string());
    }
    let crc_end = rest
        .iter()
        .position(|&b| b == b' ')
        .ok_or("missing checksum terminator")?;
    let crc = u32::from_str_radix(
        std::str::from_utf8(&rest[2..crc_end]).map_err(|_| "bad checksum encoding")?,
        16,
    )
    .map_err(|_| "bad checksum encoding")?;
    let payload = unescape(&rest[crc_end + 1..]).ok_or("bad escape sequence")?;
    if fnv1a(&payload) != crc {
        return Err(format!("checksum mismatch for key {key}"));
    }
    Ok((Some(key), payload))
}

impl AppendLogBackend {
    /// Opens (creating) the backend rooted at `dir`.
    pub fn new(dir: impl Into<PathBuf>) -> Result<AppendLogBackend> {
        let root = dir.into();
        fs::create_dir_all(&root)?;
        Ok(AppendLogBackend {
            root,
            spaces: Mutex::new(BTreeMap::new()),
        })
    }

    /// The backing directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn log_path(&self, ns: &str) -> PathBuf {
        self.root.join(ns)
    }

    fn gen_path(&self, ns: &str, age: usize) -> PathBuf {
        // age 0 = primary, 1 = .bak, 2 = .bak2, ...
        let mut os = self.root.join(ns).into_os_string();
        match age {
            0 => {}
            1 => os.push(".bak"),
            n => os.push(format!(".bak{n}")),
        }
        PathBuf::from(os)
    }

    fn tmp_path(&self, ns: &str) -> PathBuf {
        let mut os = self.root.join(ns).into_os_string();
        os.push(".tmp");
        PathBuf::from(os)
    }

    /// Parses an existing log file, dropping a torn final line.
    fn open_log(&self, ns: &str) -> Result<LogState> {
        let path = self.log_path(ns);
        let bytes = match fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let complete = bytes.iter().rposition(|&b| b == b'\n').map_or(0, |i| i + 1);
        let mut slots = BTreeMap::new();
        let mut offset = 0u64;
        let mut last_key: Option<u64> = None;
        let mut saw_formatted = false;
        while (offset as usize) < complete {
            let start = offset as usize;
            let rel_end = bytes[start..complete].iter().position(|&b| b == b'\n');
            let end = start + rel_end.unwrap(); // complete ends at a newline
            let line = &bytes[start..end];
            let line_len = (end + 1 - start) as u32;
            if !line.is_empty() {
                let (key, payload) = decode_line(line).map_err(|why| {
                    StorageError::Corrupt(format!("{ns} at byte {offset}: {why}"))
                })?;
                // Legacy bare lines are only valid as a file prefix: a
                // journal written before keyed records was all-legacy,
                // and upgrades append keyed lines after it. A bare line
                // *following* a keyed one is a mangled keyed record.
                if key.is_none() && saw_formatted {
                    return Err(StorageError::Corrupt(format!(
                        "{ns} at byte {offset}: bare line after keyed records"
                    )));
                }
                saw_formatted |= key.is_some();
                let key = key.unwrap_or_else(|| last_key.map_or(0, |k| k + 1));
                if let Some(last) = last_key {
                    if key <= last {
                        return Err(StorageError::Corrupt(format!(
                            "{ns}: key {key} after {last} is not ascending"
                        )));
                    }
                }
                last_key = Some(key);
                slots.insert(
                    key,
                    Slot {
                        offset,
                        line_len,
                        payload_len: payload.len() as u32,
                    },
                );
            }
            offset += u64::from(line_len);
        }
        // Reopen for appending past the complete prefix. A torn tail is
        // truncated away so the next record starts on a line boundary.
        let file = OpenOptions::new()
            .create(true)
            .truncate(false)
            .write(true)
            .open(&path)?;
        file.set_len(complete as u64)?;
        let mut state = LogState {
            file,
            file_len: complete as u64,
            slots,
        };
        use std::io::Seek;
        state.file.seek(std::io::SeekFrom::End(0))?;
        Ok(state)
    }

    /// Discovers existing snapshot generations, oldest → newest.
    fn open_snapshot(&self, ns: &str) -> Result<SnapState> {
        let _ = fs::remove_file(self.tmp_path(ns));
        let mut ages = Vec::new();
        for age in 0usize..64 {
            if self.gen_path(ns, age).exists() {
                ages.push(age);
            }
        }
        // ages is ascending (newest first); generations are keyed
        // oldest → newest, so the deepest age gets key 0.
        let count = ages.len() as u64;
        let gens = ages
            .into_iter()
            .rev()
            .zip(0u64..)
            .map(|(age, key)| (key, age))
            .collect();
        Ok(SnapState {
            gens,
            next_gen: count,
        })
    }

    fn read_log_record(&self, ns: &str, slot: Slot) -> Result<Vec<u8>> {
        use std::io::{Read, Seek, SeekFrom};
        let mut f = File::open(self.log_path(ns))?;
        f.seek(SeekFrom::Start(slot.offset))?;
        let mut line = vec![0u8; slot.line_len as usize];
        f.read_exact(&mut line)?;
        let line = &line[..line.len().saturating_sub(1)]; // strip newline
        let (_, payload) =
            decode_line(line).map_err(|why| StorageError::Corrupt(format!("{ns}: {why}")))?;
        Ok(payload)
    }

    fn snapshot_value(&self, ns: &str, snap: &SnapState, key: u64) -> Result<Option<Vec<u8>>> {
        let Some(&(_, age)) = snap.gens.iter().find(|&&(k, _)| k == key) else {
            return Ok(None);
        };
        match fs::read(self.gen_path(ns, age)) {
            Ok(v) => Ok(Some(v)),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e.into()),
        }
    }

    fn with_ns<T>(&self, ns: &str, f: impl FnOnce(&mut Namespace) -> Result<T>) -> Result<T> {
        let mut spaces = self.spaces.lock().unwrap_or_else(|e| e.into_inner());
        let space = spaces
            .get_mut(ns)
            .ok_or_else(|| StorageError::UnknownNamespace(ns.to_string()))?;
        f(space)
    }

    fn append_locked(
        &self,
        ns: &str,
        space: &mut Namespace,
        key: u64,
        value: &[u8],
    ) -> Result<u64> {
        match &mut space.state {
            NsState::Log(log) => {
                if let Some((&last, _)) = log.slots.iter().next_back() {
                    if key <= last {
                        return Err(StorageError::NonMonotonicKey {
                            ns: ns.to_string(),
                            key,
                            last,
                        });
                    }
                }
                let line = encode_line(key, value);
                log.file.write_all(&line)?;
                log.file.flush()?;
                log.slots.insert(
                    key,
                    Slot {
                        offset: log.file_len,
                        line_len: line.len() as u32,
                        payload_len: value.len() as u32,
                    },
                );
                log.file_len += line.len() as u64;
                Ok(key)
            }
            NsState::Snapshot(snap) => {
                fs::create_dir_all(&self.root)?;
                let tmp = self.tmp_path(ns);
                {
                    let mut f = File::create(&tmp)?;
                    f.write_all(value)?;
                    f.sync_all()?;
                }
                let cap = space
                    .profile
                    .retention
                    .max_records
                    .unwrap_or(u64::MAX)
                    .max(1);
                // Demote the chain oldest-first (deepest age first) so
                // each rename lands on a free or about-to-drop name.
                let mut demoted = Vec::with_capacity(snap.gens.len() + 1);
                for &(gen_key, age) in &snap.gens {
                    let from = self.gen_path(ns, age);
                    if (age as u64 + 1) >= cap {
                        let _ = fs::remove_file(&from);
                    } else {
                        let _ = fs::rename(&from, self.gen_path(ns, age + 1));
                        demoted.push((gen_key, age + 1));
                    }
                }
                fs::rename(&tmp, self.gen_path(ns, 0))?;
                sync_dir(&self.root)?;
                let key = snap.next_gen;
                snap.next_gen += 1;
                demoted.push((key, 0));
                snap.gens = demoted;
                Ok(key)
            }
        }
    }
}

impl StorageBackend for AppendLogBackend {
    fn name(&self) -> &'static str {
        "appendlog"
    }

    fn define(&self, ns: &str, profile: NamespaceProfile) -> Result<()> {
        validate_ns(ns)?;
        let mut spaces = self.spaces.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(space) = spaces.get_mut(ns) {
            if space.profile.kind != profile.kind {
                return Err(StorageError::InvalidNamespace(format!(
                    "{ns:?} is {:?}, redefined as {:?}",
                    space.profile.kind, profile.kind
                )));
            }
            space.profile = profile;
            return Ok(());
        }
        let state = match profile.kind {
            NamespaceKind::Log => NsState::Log(self.open_log(ns)?),
            NamespaceKind::Snapshot => NsState::Snapshot(self.open_snapshot(ns)?),
        };
        spaces.insert(ns.to_string(), Namespace { profile, state });
        Ok(())
    }

    fn append(&self, ns: &str, key: u64, value: &[u8]) -> Result<u64> {
        let mut spaces = self.spaces.lock().unwrap_or_else(|e| e.into_inner());
        let space = spaces
            .get_mut(ns)
            .ok_or_else(|| StorageError::UnknownNamespace(ns.to_string()))?;
        self.append_locked(ns, space, key, value)
    }

    fn commit(&self, batch: &[BatchEntry]) -> Result<()> {
        let mut spaces = self.spaces.lock().unwrap_or_else(|e| e.into_inner());
        for entry in batch {
            let space = spaces
                .get_mut(&entry.ns)
                .ok_or_else(|| StorageError::UnknownNamespace(entry.ns.clone()))?;
            self.append_locked(&entry.ns, space, entry.key, &entry.value)?;
        }
        Ok(())
    }

    fn get(&self, ns: &str, key: u64) -> Result<Option<Vec<u8>>> {
        self.with_ns(ns, |space| match &space.state {
            NsState::Log(log) => match log.slots.get(&key) {
                Some(&slot) => Ok(Some(self.read_log_record(ns, slot)?)),
                None => Ok(None),
            },
            NsState::Snapshot(snap) => self.snapshot_value(ns, snap, key),
        })
    }

    fn scan(&self, ns: &str, lo: u64, hi: u64) -> Result<Vec<Record>> {
        self.with_ns(ns, |space| match &space.state {
            NsState::Log(log) => {
                let mut out = Vec::new();
                for (&key, &slot) in log.slots.range(lo..=hi) {
                    out.push(Record {
                        key,
                        value: self.read_log_record(ns, slot)?,
                    });
                }
                Ok(out)
            }
            NsState::Snapshot(snap) => {
                let mut out = Vec::new();
                for &(key, _) in &snap.gens {
                    if (lo..=hi).contains(&key) {
                        if let Some(value) = self.snapshot_value(ns, snap, key)? {
                            out.push(Record { key, value });
                        }
                    }
                }
                Ok(out)
            }
        })
    }

    fn latest(&self, ns: &str) -> Result<Option<Record>> {
        self.with_ns(ns, |space| match &space.state {
            NsState::Log(log) => match log.slots.iter().next_back() {
                Some((&key, &slot)) => Ok(Some(Record {
                    key,
                    value: self.read_log_record(ns, slot)?,
                })),
                None => Ok(None),
            },
            NsState::Snapshot(snap) => match snap.gens.last() {
                Some(&(key, _)) => Ok(self
                    .snapshot_value(ns, snap, key)?
                    .map(|value| Record { key, value })),
                None => Ok(None),
            },
        })
    }

    fn len(&self, ns: &str) -> Result<u64> {
        self.with_ns(ns, |space| match &space.state {
            NsState::Log(log) => Ok(log.slots.len() as u64),
            NsState::Snapshot(snap) => Ok(snap.gens.len() as u64),
        })
    }

    fn retain(&self, ns: &str) -> Result<Pruned> {
        let mut spaces = self.spaces.lock().unwrap_or_else(|e| e.into_inner());
        let space = spaces
            .get_mut(ns)
            .ok_or_else(|| StorageError::UnknownNamespace(ns.to_string()))?;
        match &mut space.state {
            NsState::Snapshot(_) => Ok(Pruned::default()), // cap applied on append
            NsState::Log(log) => {
                let sizes: Vec<(u64, u64)> = log
                    .slots
                    .iter()
                    .map(|(&k, s)| (k, u64::from(s.payload_len)))
                    .collect();
                let Some(cut) = space.profile.retention.cutoff(&sizes) else {
                    return Ok(Pruned::default());
                };
                let survivors: Vec<u64> = log.slots.range(cut..).map(|(&k, _)| k).collect();
                if survivors.len() == log.slots.len() {
                    return Ok(Pruned::default());
                }
                // Rewrite the file with only the surviving records,
                // atomically (tmp + fsync + rename + dir fsync).
                let mut kept = Vec::new();
                for &k in &survivors {
                    let slot = log.slots[&k];
                    kept.push((k, self.read_log_record(ns, slot)?));
                }
                let tmp = self.tmp_path(ns);
                let mut new_len = 0u64;
                let mut new_slots = BTreeMap::new();
                {
                    let mut f = File::create(&tmp)?;
                    for (k, payload) in &kept {
                        let line = encode_line(*k, payload);
                        f.write_all(&line)?;
                        new_slots.insert(
                            *k,
                            Slot {
                                offset: new_len,
                                line_len: line.len() as u32,
                                payload_len: payload.len() as u32,
                            },
                        );
                        new_len += line.len() as u64;
                    }
                    f.sync_all()?;
                }
                fs::rename(&tmp, self.log_path(ns))?;
                sync_dir(&self.root)?;
                let mut pruned = Pruned::default();
                for (&k, slot) in &log.slots {
                    if k < cut {
                        pruned.records += 1;
                        pruned.bytes += u64::from(slot.payload_len);
                    }
                }
                let file = OpenOptions::new().append(true).open(self.log_path(ns))?;
                *log = LogState {
                    file,
                    file_len: new_len,
                    slots: new_slots,
                };
                Ok(pruned)
            }
        }
    }

    fn flush(&self) -> Result<()> {
        let mut spaces = self.spaces.lock().unwrap_or_else(|e| e.into_inner());
        for space in spaces.values_mut() {
            if let NsState::Log(log) = &mut space.state {
                log.file.flush()?;
                log.file.sync_all()?;
            }
        }
        sync_dir(&self.root)?;
        Ok(())
    }
}
