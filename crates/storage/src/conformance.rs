//! The shared backend conformance suite.
//!
//! Every [`StorageBackend`] must pass the same observable-behavior
//! checks; `crates/storage/tests/conformance.rs` runs them against all
//! three backends, and out-of-tree backends can reuse the suite the
//! same way. A [`Fixture`] describes how to (re)open one backend over
//! one root; reopening through the fixture is the suite's stand-in for
//! a process restart (the memory backend shares state between handles,
//! so it participates in the restart checks unchanged).
//!
//! Two classes of checks:
//!
//! * **Exact** semantics every backend must match bit-for-bit: key
//!   ordering, point lookup, scans, snapshot generation ordering and
//!   caps, `min_key` retention, monotonic-key rejection, batch commit.
//! * **Granular** semantics where the contract allows backend-shaped
//!   slack: count/byte retention may keep more than the bound (the
//!   segment backend prunes whole segments), but may never reorder,
//!   drop a suffix record, or prune the namespace empty.

use crate::{
    AppendLogBackend, BatchEntry, MemoryBackend, NamespaceProfile, Record, Retention,
    SegmentBackend, SegmentOptions, StorageBackend, StorageError,
};
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Reopens a backend over the fixture's persistent root.
type Opener = Box<dyn Fn() -> Arc<dyn StorageBackend> + Send>;

/// Tears the tail off a namespace's newest data file by name.
type TearTail = Box<dyn Fn(&str) + Send>;

/// Opens one backend implementation over one persistent root.
pub struct Fixture {
    pub name: &'static str,
    opener: Opener,
    /// Truncates the tail of the namespace's newest data file,
    /// simulating a crash mid-append. `None` for backends with no
    /// crash surface (memory).
    tear_tail: Option<TearTail>,
}

impl Fixture {
    /// A fresh handle over the fixture's root — the "restarted
    /// process" in reopen checks.
    pub fn open(&self) -> Arc<dyn StorageBackend> {
        (self.opener)()
    }

    pub fn can_tear(&self) -> bool {
        self.tear_tail.is_some()
    }

    pub fn tear_tail(&self, ns: &str) {
        (self.tear_tail.as_ref().expect("fixture cannot tear"))(ns)
    }
}

/// Chops `n` bytes off the end of `path`, tearing its final record.
fn truncate_file(path: &Path, n: u64) {
    let len = std::fs::metadata(path).expect("stat data file").len();
    let f = std::fs::OpenOptions::new()
        .write(true)
        .open(path)
        .expect("open data file");
    f.set_len(len.saturating_sub(n)).expect("truncate");
}

/// Deliberately small segment tuning so the suite exercises rotation
/// and compaction with a handful of records.
pub fn small_segment_options() -> SegmentOptions {
    SegmentOptions {
        max_segment_bytes: 1 << 20,
        max_segment_records: 4,
        compact_sealed_segments: 3,
        index_every: 2,
    }
}

/// The three in-tree backends, each rooted under `base`.
pub fn fixtures(base: &Path) -> Vec<Fixture> {
    let shared = MemoryBackend::new();
    let log_root = base.join("appendlog");
    let seg_root = base.join("segment");
    let log_tear = log_root.clone();
    let seg_tear = seg_root.clone();
    vec![
        Fixture {
            name: "memory",
            opener: Box::new(move || Arc::new(shared.clone())),
            tear_tail: None,
        },
        Fixture {
            name: "appendlog",
            opener: Box::new(move || {
                Arc::new(AppendLogBackend::new(&log_root).expect("open appendlog"))
            }),
            tear_tail: Some(Box::new(move |ns| truncate_file(&log_tear.join(ns), 2))),
        },
        Fixture {
            name: "segment",
            opener: Box::new(move || {
                Arc::new(
                    SegmentBackend::with_options(&seg_root, small_segment_options())
                        .expect("open segment"),
                )
            }),
            tear_tail: Some(Box::new(move |ns| {
                let dir = seg_tear.join(ns);
                let newest = std::fs::read_dir(&dir)
                    .expect("list segments")
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|x| x == "seg"))
                    .max()
                    .expect("no segment file to tear");
                truncate_file(&newest, 2);
            })),
        },
    ]
}

fn payload(tag: &str, i: u64) -> Vec<u8> {
    // Exercise escaping and binary-safety: backslashes, newlines, CR,
    // and a non-UTF8 byte.
    let mut v = format!("{{\"tag\":\"{tag}\",\"i\":{i},\"path\":\"a\\\\b\"}}\n\r").into_bytes();
    v.push(0xFF);
    v
}

fn keys(records: &[Record]) -> Vec<u64> {
    records.iter().map(|r| r.key).collect()
}

fn values(records: &[Record]) -> Vec<Vec<u8>> {
    records.iter().map(|r| r.value.clone()).collect()
}

/// Runs every conformance check against the fixture.
pub fn run_full_suite(fix: &Fixture) {
    log_basics(fix);
    log_rejects_non_monotonic_keys(fix);
    log_state_survives_reopen(fix);
    batch_commit_spans_namespaces(fix);
    snapshot_generations_are_ordered_and_capped(fix);
    snapshot_state_survives_reopen(fix);
    retention_by_min_key_is_exact(fix);
    retention_by_count_is_safe(fix);
    namespace_errors_are_typed(fix);
    torn_final_record_is_dropped_on_reopen(fix);
}

/// Append / get / scan / latest / len over a log namespace.
pub fn log_basics(fix: &Fixture) {
    let b = fix.open();
    b.define("conf-basics", NamespaceProfile::log(Retention::unbounded()))
        .unwrap();
    for key in [10u64, 20, 30] {
        let assigned = b
            .append("conf-basics", key, &payload("basics", key))
            .unwrap();
        assert_eq!(assigned, key, "{}: log keys are caller-chosen", fix.name);
    }
    assert_eq!(b.len("conf-basics").unwrap(), 3, "{}", fix.name);
    assert_eq!(
        b.get("conf-basics", 20).unwrap(),
        Some(payload("basics", 20)),
        "{}",
        fix.name
    );
    assert_eq!(b.get("conf-basics", 15).unwrap(), None, "{}", fix.name);
    let mid = b.scan("conf-basics", 15, 30).unwrap();
    assert_eq!(keys(&mid), vec![20, 30], "{}", fix.name);
    assert_eq!(
        values(&mid),
        vec![payload("basics", 20), payload("basics", 30)],
        "{}",
        fix.name
    );
    let latest = b.latest("conf-basics").unwrap().unwrap();
    assert_eq!(
        (latest.key, latest.value),
        (30, payload("basics", 30)),
        "{}",
        fix.name
    );
    assert!(b.scan("conf-basics", 31, u64::MAX).unwrap().is_empty());
    b.flush().unwrap();
}

/// Keys must be strictly ascending in a log namespace.
pub fn log_rejects_non_monotonic_keys(fix: &Fixture) {
    let b = fix.open();
    b.define("conf-mono", NamespaceProfile::log(Retention::unbounded()))
        .unwrap();
    b.append("conf-mono", 5, b"five").unwrap();
    for bad in [5u64, 4, 0] {
        match b.append("conf-mono", bad, b"stale") {
            Err(StorageError::NonMonotonicKey { key, last, .. }) => {
                assert_eq!((key, last), (bad, 5), "{}", fix.name);
            }
            other => panic!("{}: expected NonMonotonicKey, got {other:?}", fix.name),
        }
    }
    assert_eq!(b.len("conf-mono").unwrap(), 1, "{}", fix.name);
}

/// A reopened backend sees everything a flushed handle wrote, and
/// appends continue the key sequence.
pub fn log_state_survives_reopen(fix: &Fixture) {
    {
        let b = fix.open();
        b.define("conf-reopen", NamespaceProfile::log(Retention::unbounded()))
            .unwrap();
        for key in 0..10u64 {
            b.append("conf-reopen", key * 100, &payload("reopen", key))
                .unwrap();
        }
        b.flush().unwrap();
    }
    let b = fix.open();
    b.define("conf-reopen", NamespaceProfile::log(Retention::unbounded()))
        .unwrap();
    assert_eq!(b.len("conf-reopen").unwrap(), 10, "{}", fix.name);
    let all = b.scan("conf-reopen", 0, u64::MAX).unwrap();
    assert_eq!(keys(&all), (0..10u64).map(|k| k * 100).collect::<Vec<_>>());
    assert_eq!(values(&all)[7], payload("reopen", 7), "{}", fix.name);
    assert_eq!(b.latest("conf-reopen").unwrap().unwrap().key, 900);
    // Continuation past the restored tail.
    b.append("conf-reopen", 901, b"after-restart").unwrap();
    assert!(matches!(
        b.append("conf-reopen", 900, b"stale"),
        Err(StorageError::NonMonotonicKey { .. })
    ));
}

/// `commit` applies a cross-namespace batch in order.
pub fn batch_commit_spans_namespaces(fix: &Fixture) {
    let b = fix.open();
    b.define(
        "conf-batch-a",
        NamespaceProfile::log(Retention::unbounded()),
    )
    .unwrap();
    b.define(
        "conf-batch-b",
        NamespaceProfile::log(Retention::unbounded()),
    )
    .unwrap();
    let batch: Vec<BatchEntry> = (0..4u64)
        .map(|i| BatchEntry {
            ns: if i % 2 == 0 {
                "conf-batch-a"
            } else {
                "conf-batch-b"
            }
            .to_string(),
            key: i,
            value: payload("batch", i),
        })
        .collect();
    b.commit(&batch).unwrap();
    assert_eq!(
        keys(&b.scan("conf-batch-a", 0, u64::MAX).unwrap()),
        vec![0, 2]
    );
    assert_eq!(
        keys(&b.scan("conf-batch-b", 0, u64::MAX).unwrap()),
        vec![1, 3]
    );
    assert_eq!(
        b.get("conf-batch-b", 3).unwrap(),
        Some(payload("batch", 3)),
        "{}",
        fix.name
    );
}

/// Snapshot namespaces assign their own ascending keys, keep newest
/// values in order, and honor the generation cap on every append.
pub fn snapshot_generations_are_ordered_and_capped(fix: &Fixture) {
    let b = fix.open();
    b.define("conf-snap", NamespaceProfile::snapshot(2))
        .unwrap();
    let mut assigned = Vec::new();
    for i in 0..4u64 {
        // The caller's key is ignored for snapshots — pass garbage.
        assigned.push(b.append("conf-snap", 9999, &payload("snap", i)).unwrap());
    }
    assert!(
        assigned.windows(2).all(|w| w[0] < w[1]),
        "{}: snapshot keys ascend, got {assigned:?}",
        fix.name
    );
    assert_eq!(b.len("conf-snap").unwrap(), 2, "{}: cap of 2", fix.name);
    let retained = b.scan("conf-snap", 0, u64::MAX).unwrap();
    assert_eq!(
        values(&retained),
        vec![payload("snap", 2), payload("snap", 3)],
        "{}: newest two generations in order",
        fix.name
    );
    assert_eq!(
        b.latest("conf-snap").unwrap().unwrap().value,
        payload("snap", 3),
        "{}",
        fix.name
    );
}

/// Generation order and values survive reopen; key numerals need not
/// (the append-log backend renumbers from file positions).
pub fn snapshot_state_survives_reopen(fix: &Fixture) {
    {
        let b = fix.open();
        b.define("conf-snap-reopen", NamespaceProfile::snapshot(2))
            .unwrap();
        for i in 0..3u64 {
            b.append("conf-snap-reopen", 0, &payload("snapro", i))
                .unwrap();
        }
        b.flush().unwrap();
    }
    let b = fix.open();
    b.define("conf-snap-reopen", NamespaceProfile::snapshot(2))
        .unwrap();
    assert_eq!(b.len("conf-snap-reopen").unwrap(), 2, "{}", fix.name);
    let retained = b.scan("conf-snap-reopen", 0, u64::MAX).unwrap();
    assert_eq!(
        values(&retained),
        vec![payload("snapro", 1), payload("snapro", 2)],
        "{}: generation order survives restart",
        fix.name
    );
    // A post-restart append demotes the restored primary.
    b.append("conf-snap-reopen", 0, &payload("snapro", 3))
        .unwrap();
    let retained = b.scan("conf-snap-reopen", 0, u64::MAX).unwrap();
    assert_eq!(
        values(&retained),
        vec![payload("snapro", 2), payload("snapro", 3)],
        "{}",
        fix.name
    );
}

/// `min_key` retention is exact on every backend: records below the
/// cutoff disappear from every read path, and the pruned counts match.
pub fn retention_by_min_key_is_exact(fix: &Fixture) {
    let b = fix.open();
    b.define(
        "conf-minkey",
        NamespaceProfile::log(Retention::unbounded().keep_from(25)),
    )
    .unwrap();
    let mut expect_bytes = 0u64;
    for key in [10u64, 20, 30, 40] {
        let v = payload("minkey", key);
        if key < 25 {
            expect_bytes += v.len() as u64;
        }
        b.append("conf-minkey", key, &v).unwrap();
    }
    let pruned = b.retain("conf-minkey").unwrap();
    assert_eq!(pruned.records, 2, "{}", fix.name);
    assert_eq!(pruned.bytes, expect_bytes, "{}", fix.name);
    assert_eq!(b.len("conf-minkey").unwrap(), 2, "{}", fix.name);
    assert_eq!(b.get("conf-minkey", 10).unwrap(), None, "{}", fix.name);
    assert_eq!(
        keys(&b.scan("conf-minkey", 0, u64::MAX).unwrap()),
        vec![30, 40]
    );
    // Idempotent.
    assert!(b.retain("conf-minkey").unwrap().is_empty(), "{}", fix.name);
}

/// Count-bound retention may be granular (the segment backend prunes
/// whole segments) but must only ever drop a *prefix*, keep at least
/// one record, and report exactly what it dropped.
pub fn retention_by_count_is_safe(fix: &Fixture) {
    let b = fix.open();
    b.define(
        "conf-count",
        NamespaceProfile::log(Retention::unbounded().keep_records(3)),
    )
    .unwrap();
    for key in 0..10u64 {
        b.append("conf-count", key, &payload("count", key)).unwrap();
    }
    let before = b.scan("conf-count", 0, u64::MAX).unwrap();
    let pruned = b.retain("conf-count").unwrap();
    let after = b.scan("conf-count", 0, u64::MAX).unwrap();
    assert!(
        !after.is_empty(),
        "{}: retention pruned everything",
        fix.name
    );
    assert_eq!(
        pruned.records,
        (before.len() - after.len()) as u64,
        "{}",
        fix.name
    );
    assert_eq!(
        &after[..],
        &before[before.len() - after.len()..],
        "{}: survivors must be a suffix",
        fix.name
    );
    assert_eq!(
        b.latest("conf-count").unwrap().unwrap().key,
        9,
        "{}: the newest record always survives",
        fix.name
    );
}

/// Namespace misuse is reported as typed errors, not panics.
pub fn namespace_errors_are_typed(fix: &Fixture) {
    let b = fix.open();
    assert!(matches!(
        b.append("conf-undefined", 0, b"x"),
        Err(StorageError::UnknownNamespace(_))
    ));
    assert!(matches!(
        b.scan("conf-undefined", 0, u64::MAX),
        Err(StorageError::UnknownNamespace(_))
    ));
    assert!(matches!(
        b.define("bad/ns", NamespaceProfile::log(Retention::unbounded())),
        Err(StorageError::InvalidNamespace(_))
    ));
    b.define("conf-kind", NamespaceProfile::log(Retention::unbounded()))
        .unwrap();
    assert!(matches!(
        b.define("conf-kind", NamespaceProfile::snapshot(2)),
        Err(StorageError::InvalidNamespace(_))
    ));
    // Redefining with the same kind updates retention, no error.
    b.define(
        "conf-kind",
        NamespaceProfile::log(Retention::unbounded().keep_records(5)),
    )
    .unwrap();
}

/// A crash mid-append tears at most the final record, which reopen
/// drops; the sequence then continues from the surviving tail.
pub fn torn_final_record_is_dropped_on_reopen(fix: &Fixture) {
    if !fix.can_tear() {
        return; // no crash surface (memory backend)
    }
    {
        let b = fix.open();
        b.define("conf-torn", NamespaceProfile::log(Retention::unbounded()))
            .unwrap();
        for key in [1u64, 2, 3] {
            b.append("conf-torn", key, &payload("torn", key)).unwrap();
        }
        b.flush().unwrap();
    }
    fix.tear_tail("conf-torn");
    let b = fix.open();
    b.define("conf-torn", NamespaceProfile::log(Retention::unbounded()))
        .unwrap();
    assert_eq!(b.len("conf-torn").unwrap(), 2, "{}", fix.name);
    let latest = b.latest("conf-torn").unwrap().unwrap();
    assert_eq!(
        (latest.key, latest.value),
        (2, payload("torn", 2)),
        "{}",
        fix.name
    );
    // The torn key is reusable — it never durably existed.
    b.append("conf-torn", 3, &payload("torn", 33)).unwrap();
    assert_eq!(b.len("conf-torn").unwrap(), 3, "{}", fix.name);
}

/// Spawns a temp directory for a conformance run.
pub fn temp_base(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("roleclass-storage-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}
