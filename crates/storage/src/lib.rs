//! Pluggable storage for the role-classification history plane.
//!
//! Checkpoints, the flight-recorder journal, and per-window run history
//! were flat files bolted beside each other; this crate formalizes them
//! as *keyed record namespaces* behind one [`StorageBackend`] trait so
//! the same call sites can run over an ephemeral map, today's
//! append-log files, or indexed segments with compaction and retention.
//!
//! # Data model
//!
//! A backend holds named **namespaces**. Every namespace is declared
//! with [`StorageBackend::define`] before use and carries a
//! [`NamespaceProfile`] — its [`NamespaceKind`] plus a [`Retention`]
//! policy. Records are `(u64 key, bytes)` pairs:
//!
//! * **Log** namespaces are append-only sequences with caller-chosen,
//!   strictly ascending keys (flight-recorder sequence numbers, window
//!   start timestamps). Keys are part of the durable contract: point
//!   lookup, range scan, and retention all address them.
//! * **Snapshot** namespaces are generation stacks (checkpoint
//!   primary/backup). The backend assigns each generation the next key
//!   itself and [`StorageBackend::append`] returns it; the durable
//!   contract is *ordering and values*, not key numerals — the
//!   append-log backend stores generations as today's
//!   `file` / `file.bak` pair, which persists order but not numbers.
//!   The generation cap in the profile's retention is applied on every
//!   append (the demotion that used to be hand-rolled rename calls).
//!
//! # Durability contract
//!
//! * `append` on a **log** namespace is *flushed* (stream-buffered data
//!   reaches the OS) before returning, but not fsynced — a process
//!   crash can tear at most the final record, which readers drop; an OS
//!   crash may lose recently appended records.
//! * `append` on a **snapshot** namespace is *committed*: the new
//!   generation is written to the side, fsynced, renamed into place,
//!   and the parent directory is fsynced, so a crash at any point
//!   leaves the previous generation intact and a completed append
//!   survives power loss. (The directory fsync is the fix for the old
//!   write-then-rename path, which synced the file but never the
//!   directory entry.)
//! * [`StorageBackend::flush`] hardens everything: open log files and
//!   their directories are fsynced.
//! * [`StorageBackend::commit`] applies a batch in order with each
//!   entry atomic; a crash mid-batch leaves a durable *prefix*, never
//!   an interleaving or a torn record.
//!
//! # Backends
//!
//! * [`MemoryBackend`] — an in-process map; clones share state, so
//!   "reopen" in tests is just another handle.
//! * [`AppendLogBackend`] — today's on-disk behavior formalized:
//!   write-then-rename generations for snapshots, a per-append-flushed
//!   line file for logs (legacy bare-JSONL journals are still read,
//!   with keys synthesized by line position).
//! * [`SegmentBackend`] — append-only segment files with a sparse
//!   in-segment index, background-free compaction of old segments, and
//!   retention by record count / bytes / minimum key.

mod appendlog;
pub mod conformance;
mod memory;
mod segment;

pub use appendlog::{decode_line_payload, AppendLogBackend};
pub use memory::MemoryBackend;
pub use segment::{SegmentBackend, SegmentOptions};

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::Arc;

/// Metric names the storage layer increments on the pipeline recorder.
/// Declared here (next to the code that defines their meaning) and
/// linted workspace-wide in `tests/metric_names.rs`.
pub const STORAGE_METRIC_NAMES: &[&str] = &[
    "roleclass_storage_appends_total",
    "roleclass_storage_bytes_appended_total",
    "roleclass_storage_prune_bytes_total",
    "roleclass_storage_prune_records_total",
    "roleclass_storage_prunes_total",
];

/// Event names the storage layer journals (layer `storage`).
pub const STORAGE_EVENT_NAMES: &[&str] = &[
    "roleclass_storage_history_recorded",
    "roleclass_storage_retention_pruned",
];

/// Why a storage operation failed.
#[derive(Debug)]
pub enum StorageError {
    /// Filesystem-level failure.
    Io(io::Error),
    /// On-disk state exists but cannot be parsed as this backend's
    /// format (bad magic, failed checksum, truncated non-final record).
    Corrupt(String),
    /// The namespace was never [`StorageBackend::define`]d.
    UnknownNamespace(String),
    /// The namespace name is malformed, or a redefinition conflicts
    /// with the existing profile's kind.
    InvalidNamespace(String),
    /// A log append's key is not strictly greater than the last key.
    NonMonotonicKey { ns: String, key: u64, last: u64 },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage io error: {e}"),
            StorageError::Corrupt(why) => write!(f, "corrupt storage: {why}"),
            StorageError::UnknownNamespace(ns) => write!(f, "unknown namespace {ns:?}"),
            StorageError::InvalidNamespace(why) => write!(f, "invalid namespace: {why}"),
            StorageError::NonMonotonicKey { ns, key, last } => write!(
                f,
                "non-monotonic key {key} in log namespace {ns:?} (last key {last})"
            ),
        }
    }
}

impl std::error::Error for StorageError {}

impl From<io::Error> for StorageError {
    fn from(e: io::Error) -> Self {
        StorageError::Io(e)
    }
}

impl StorageError {
    /// Converts into an `io::Error` for call sites with io signatures.
    pub fn into_io(self) -> io::Error {
        match self {
            StorageError::Io(e) => e,
            other => io::Error::new(io::ErrorKind::InvalidData, other.to_string()),
        }
    }
}

/// Shorthand result type for storage operations. The error parameter
/// defaults to [`StorageError`] but stays overridable so derive-macro
/// expansions that spell out `Result<T, E>` still resolve.
pub type Result<T, E = StorageError> = std::result::Result<T, E>;

/// How records in a namespace are laid out and made durable. See the
/// crate-level durability contract.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum NamespaceKind {
    /// Generation stack: backend-assigned keys, committed (fsynced)
    /// writes, automatic generation cap.
    Snapshot,
    /// Append-only sequence: caller-chosen strictly ascending keys,
    /// flushed (not fsynced) writes, explicit retention.
    Log,
}

/// What a namespace keeps. `None` means unbounded on that axis; a
/// record is pruned when it violates *any* bound. Pruning granularity
/// is the backend's: the segment backend may keep slightly more than
/// the bound until a whole segment falls out of the window.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Retention {
    /// Keep at most this many (newest) records.
    pub max_records: Option<u64>,
    /// Keep at most this many payload bytes (newest records first).
    pub max_bytes: Option<u64>,
    /// Drop records with keys below this (age-based when keys are
    /// timestamps; the caller computes the cutoff).
    pub min_key: Option<u64>,
}

impl Retention {
    /// Keeps everything forever.
    pub fn unbounded() -> Retention {
        Retention::default()
    }

    /// Bounds the namespace to the newest `n` records.
    pub fn keep_records(mut self, n: u64) -> Retention {
        self.max_records = Some(n);
        self
    }

    /// Bounds the namespace to roughly `n` payload bytes.
    pub fn keep_bytes(mut self, n: u64) -> Retention {
        self.max_bytes = Some(n);
        self
    }

    /// Drops records keyed below `k`.
    pub fn keep_from(mut self, k: u64) -> Retention {
        self.min_key = Some(k);
        self
    }

    /// True when no axis is bounded.
    pub fn is_unbounded(&self) -> bool {
        self.max_records.is_none() && self.max_bytes.is_none() && self.min_key.is_none()
    }

    /// The lowest key that survives this policy over `records`
    /// (ascending `(key, bytes)` pairs), or `None` to keep everything.
    pub fn cutoff(&self, records: &[(u64, u64)]) -> Option<u64> {
        let mut cut: Option<u64> = self.min_key;
        if let Some(max) = self.max_records {
            if (records.len() as u64) > max {
                let first_kept = records.len() - max as usize;
                cut = Some(cut.unwrap_or(0).max(records[first_kept].0));
            }
        }
        if let Some(max) = self.max_bytes {
            let mut kept = 0u64;
            let mut first_kept = records.len();
            for (i, (_, bytes)) in records.iter().enumerate().rev() {
                if kept + bytes > max {
                    break;
                }
                kept += bytes;
                first_kept = i;
            }
            if first_kept < records.len() {
                cut = Some(cut.unwrap_or(0).max(records[first_kept].0));
            } else if !records.is_empty() {
                // Even the newest record alone busts the byte budget:
                // everything below it goes, the newest survives (a
                // namespace never prunes itself empty on bytes alone).
                cut = Some(cut.unwrap_or(0).max(records[records.len() - 1].0));
            }
        }
        cut
    }
}

/// A namespace's declared layout and retention policy.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NamespaceProfile {
    pub kind: NamespaceKind,
    pub retention: Retention,
}

impl NamespaceProfile {
    /// A snapshot (generation-stack) namespace keeping `generations`
    /// newest generations.
    pub fn snapshot(generations: u64) -> NamespaceProfile {
        NamespaceProfile {
            kind: NamespaceKind::Snapshot,
            retention: Retention::unbounded().keep_records(generations),
        }
    }

    /// An append-only log namespace with the given retention.
    pub fn log(retention: Retention) -> NamespaceProfile {
        NamespaceProfile {
            kind: NamespaceKind::Log,
            retention,
        }
    }
}

/// One stored record.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Record {
    pub key: u64,
    pub value: Vec<u8>,
}

/// One entry of a [`StorageBackend::commit`] batch.
#[derive(Clone, Debug)]
pub struct BatchEntry {
    pub ns: String,
    pub key: u64,
    pub value: Vec<u8>,
}

/// What a retention pass removed.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Pruned {
    pub records: u64,
    pub bytes: u64,
}

impl Pruned {
    pub fn is_empty(&self) -> bool {
        self.records == 0
    }

    pub fn merge(self, other: Pruned) -> Pruned {
        Pruned {
            records: self.records + other.records,
            bytes: self.bytes + other.bytes,
        }
    }
}

/// A keyed-record store. All methods take `&self` (backends are
/// internally synchronized) so one `Arc<dyn StorageBackend>` can be
/// shared by the checkpointer, the flight recorder, and the run store.
pub trait StorageBackend: Send + Sync + fmt::Debug {
    /// Stable backend name (`memory` / `appendlog` / `segment`), used
    /// in telemetry labels and bench rows.
    fn name(&self) -> &'static str;

    /// Declares `ns` with `profile`. Idempotent; redefinition updates
    /// the retention policy but must not change the kind. Defining a
    /// persistent namespace also loads any state already on disk.
    fn define(&self, ns: &str, profile: NamespaceProfile) -> Result<()>;

    /// Appends one record; see [`NamespaceKind`] for the key and
    /// durability semantics. Returns the effective key (the caller's
    /// for logs, the assigned generation for snapshots).
    fn append(&self, ns: &str, key: u64, value: &[u8]) -> Result<u64>;

    /// Applies `batch` in order. Each entry is individually atomic; a
    /// crash mid-batch leaves a durable prefix of the batch.
    fn commit(&self, batch: &[BatchEntry]) -> Result<()>;

    /// Point lookup by key.
    fn get(&self, ns: &str, key: u64) -> Result<Option<Vec<u8>>>;

    /// All retained records with `lo <= key <= hi`, ascending.
    fn scan(&self, ns: &str, lo: u64, hi: u64) -> Result<Vec<Record>>;

    /// The newest retained record, if any.
    fn latest(&self, ns: &str) -> Result<Option<Record>>;

    /// Number of retained records.
    fn len(&self, ns: &str) -> Result<u64>;

    /// Applies the namespace profile's retention policy now, returning
    /// what was dropped. Log namespaces only prune here (and the
    /// newest record always survives); snapshot namespaces also apply
    /// their generation cap automatically on append.
    fn retain(&self, ns: &str) -> Result<Pruned>;

    /// Hardens everything appended so far: fsyncs open files and their
    /// directories. The durability point for log namespaces.
    fn flush(&self) -> Result<()>;
}

/// Validates a namespace name: path-safe, one component, no `..`.
pub(crate) fn validate_ns(ns: &str) -> Result<()> {
    let ok = !ns.is_empty()
        && ns != ".."
        && !ns.starts_with('.')
        && ns
            .chars()
            .all(|c| c.is_ascii_alphanumeric() || matches!(c, '.' | '_' | '-'));
    if ok {
        Ok(())
    } else {
        Err(StorageError::InvalidNamespace(format!(
            "bad namespace name {ns:?}"
        )))
    }
}

/// FNV-1a over `bytes`, the per-record checksum both file backends use.
pub(crate) fn fnv1a(bytes: &[u8]) -> u32 {
    let mut h: u32 = 0x811c9dc5;
    for &b in bytes {
        h ^= u32::from(b);
        h = h.wrapping_mul(0x01000193);
    }
    h
}

/// Fsyncs the directory at `dir` so renames/creates inside it are
/// durable. Directory handles can't be fsynced on some filesystems;
/// that is reported as an error only if the open itself fails.
pub(crate) fn sync_dir(dir: &Path) -> io::Result<()> {
    let d = std::fs::File::open(dir)?;
    // A few filesystems reject fsync on directory handles; losing the
    // sync there is the platform's durability floor, not an API error.
    let _ = d.sync_all();
    Ok(())
}

/// Which [`StorageBackend`] implementation to open.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum BackendKind {
    Memory,
    AppendLog,
    Segment,
}

impl BackendKind {
    /// Stable lowercase name, accepted back by [`BackendKind::parse`].
    pub fn as_str(self) -> &'static str {
        match self {
            BackendKind::Memory => "memory",
            BackendKind::AppendLog => "appendlog",
            BackendKind::Segment => "segment",
        }
    }

    /// Parses a CLI-style backend name.
    pub fn parse(s: &str) -> Option<BackendKind> {
        match s {
            "memory" => Some(BackendKind::Memory),
            "appendlog" | "append-log" | "log" => Some(BackendKind::AppendLog),
            "segment" | "segments" => Some(BackendKind::Segment),
            _ => None,
        }
    }
}

/// Typed storage configuration: which backend, where it lives, and how
/// much history each namespace class retains. Mirrors the
/// `EngineConfig` idiom — serde-able, builder-style `with_*`, opened
/// into a live backend with [`StorageConfig::open`].
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub struct StorageConfig {
    /// Backend implementation.
    pub backend: BackendKind,
    /// Root directory for the file backends (ignored by `memory`).
    pub root: String,
    /// Flight-journal retention: newest records kept.
    pub journal_keep_records: Option<u64>,
    /// Flight-journal retention: newest payload bytes kept.
    pub journal_keep_bytes: Option<u64>,
    /// Run-history retention: newest windows kept.
    pub history_keep_windows: Option<u64>,
    /// Run-history retention: newest payload bytes kept.
    pub history_keep_bytes: Option<u64>,
    /// Checkpoint generations kept (primary + backups). Minimum 1.
    pub checkpoint_generations: u64,
}

impl StorageConfig {
    /// Segment-backed storage rooted at `root`, with the default
    /// bounded-disk retention (4096 journal records / 1024 windows,
    /// 2 checkpoint generations).
    pub fn new(root: impl Into<String>) -> StorageConfig {
        StorageConfig {
            backend: BackendKind::Segment,
            root: root.into(),
            journal_keep_records: Some(4096),
            journal_keep_bytes: None,
            history_keep_windows: Some(1024),
            history_keep_bytes: None,
            checkpoint_generations: 2,
        }
    }

    /// Ephemeral in-memory storage (tests, one-shot CLI runs).
    pub fn memory() -> StorageConfig {
        StorageConfig {
            backend: BackendKind::Memory,
            ..StorageConfig::new("")
        }
    }

    pub fn with_backend(mut self, backend: BackendKind) -> StorageConfig {
        self.backend = backend;
        self
    }

    pub fn with_journal_retention(mut self, records: Option<u64>, bytes: Option<u64>) -> Self {
        self.journal_keep_records = records;
        self.journal_keep_bytes = bytes;
        self
    }

    pub fn with_history_retention(mut self, windows: Option<u64>, bytes: Option<u64>) -> Self {
        self.history_keep_windows = windows;
        self.history_keep_bytes = bytes;
        self
    }

    pub fn with_checkpoint_generations(mut self, generations: u64) -> Self {
        self.checkpoint_generations = generations.max(1);
        self
    }

    /// The retention profile for the flight journal namespace.
    pub fn journal_profile(&self) -> NamespaceProfile {
        NamespaceProfile::log(Retention {
            max_records: self.journal_keep_records,
            max_bytes: self.journal_keep_bytes,
            min_key: None,
        })
    }

    /// The retention profile for the run-history namespace.
    pub fn history_profile(&self) -> NamespaceProfile {
        NamespaceProfile::log(Retention {
            max_records: self.history_keep_windows,
            max_bytes: self.history_keep_bytes,
            min_key: None,
        })
    }

    /// The generation profile for the checkpoint namespace.
    pub fn checkpoint_profile(&self) -> NamespaceProfile {
        NamespaceProfile::snapshot(self.checkpoint_generations.max(1))
    }

    /// Opens the configured backend. File backends create `root`.
    pub fn open(&self) -> Result<Arc<dyn StorageBackend>> {
        let root = PathBuf::from(&self.root);
        Ok(match self.backend {
            BackendKind::Memory => Arc::new(MemoryBackend::new()),
            BackendKind::AppendLog => Arc::new(AppendLogBackend::new(root)?),
            BackendKind::Segment => Arc::new(SegmentBackend::new(root)?),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retention_cutoff_combines_axes() {
        let recs: Vec<(u64, u64)> = (0..10).map(|k| (k * 10, 100)).collect();
        assert_eq!(Retention::unbounded().cutoff(&recs), None);
        assert_eq!(
            Retention::unbounded().keep_records(3).cutoff(&recs),
            Some(70)
        );
        assert_eq!(
            Retention::unbounded().keep_bytes(250).cutoff(&recs),
            Some(80)
        );
        assert_eq!(Retention::unbounded().keep_from(45).cutoff(&recs), Some(45));
        // Strictest axis wins.
        let r = Retention {
            max_records: Some(8),
            max_bytes: Some(250),
            min_key: Some(15),
        };
        assert_eq!(r.cutoff(&recs), Some(80));
        // A single over-budget record survives: never prune to empty.
        let big = vec![(5u64, 1000u64)];
        assert_eq!(Retention::unbounded().keep_bytes(10).cutoff(&big), Some(5));
    }

    #[test]
    fn namespace_names_are_validated() {
        assert!(validate_ns("history.ckpt").is_ok());
        assert!(validate_ns("events-journal_2").is_ok());
        assert!(validate_ns("").is_err());
        assert!(validate_ns("..").is_err());
        assert!(validate_ns(".hidden").is_err());
        assert!(validate_ns("a/b").is_err());
    }

    #[test]
    fn storage_config_round_trips_and_parses() {
        let cfg = StorageConfig::new("/tmp/state")
            .with_backend(BackendKind::AppendLog)
            .with_journal_retention(Some(10), Some(1 << 20))
            .with_history_retention(None, Some(4096))
            .with_checkpoint_generations(3);
        let json = serde_json::to_string(&cfg).unwrap();
        let back: StorageConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back, cfg);
        assert_eq!(BackendKind::parse("segment"), Some(BackendKind::Segment));
        assert_eq!(
            BackendKind::parse("append-log"),
            Some(BackendKind::AppendLog)
        );
        assert_eq!(BackendKind::parse("rocksdb"), None);
        assert_eq!(BackendKind::Segment.as_str(), "segment");
    }
}
