//! In-process backend: a mutex-guarded map of namespaces. Clones share
//! state, so a test can hold one handle as "the process" and another as
//! "the process after restart" — the conformance suite's reopen step is
//! a no-op here by construction.

use crate::{
    validate_ns, BatchEntry, NamespaceKind, NamespaceProfile, Pruned, Record, Result,
    StorageBackend, StorageError,
};
use std::collections::BTreeMap;
use std::sync::{Arc, Mutex};

#[derive(Debug)]
struct Namespace {
    profile: NamespaceProfile,
    records: BTreeMap<u64, Vec<u8>>,
    /// Next backend-assigned key for snapshot generations.
    next_gen: u64,
}

/// The ephemeral [`StorageBackend`]. See the module docs.
#[derive(Clone, Debug, Default)]
pub struct MemoryBackend {
    state: Arc<Mutex<BTreeMap<String, Namespace>>>,
}

impl MemoryBackend {
    pub fn new() -> MemoryBackend {
        MemoryBackend::default()
    }

    fn with_ns<T>(&self, ns: &str, f: impl FnOnce(&mut Namespace) -> Result<T>) -> Result<T> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let space = state
            .get_mut(ns)
            .ok_or_else(|| StorageError::UnknownNamespace(ns.to_string()))?;
        f(space)
    }

    fn append_locked(space: &mut Namespace, ns: &str, key: u64, value: &[u8]) -> Result<u64> {
        let key = match space.profile.kind {
            NamespaceKind::Log => {
                if let Some((&last, _)) = space.records.iter().next_back() {
                    if key <= last {
                        return Err(StorageError::NonMonotonicKey {
                            ns: ns.to_string(),
                            key,
                            last,
                        });
                    }
                }
                key
            }
            NamespaceKind::Snapshot => {
                let k = space.next_gen;
                space.next_gen += 1;
                k
            }
        };
        space.records.insert(key, value.to_vec());
        if space.profile.kind == NamespaceKind::Snapshot {
            if let Some(cap) = space.profile.retention.max_records {
                while space.records.len() as u64 > cap.max(1) {
                    let oldest = *space.records.keys().next().unwrap();
                    space.records.remove(&oldest);
                }
            }
        }
        Ok(key)
    }
}

impl StorageBackend for MemoryBackend {
    fn name(&self) -> &'static str {
        "memory"
    }

    fn define(&self, ns: &str, profile: NamespaceProfile) -> Result<()> {
        validate_ns(ns)?;
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        match state.get_mut(ns) {
            Some(space) => {
                if space.profile.kind != profile.kind {
                    return Err(StorageError::InvalidNamespace(format!(
                        "{ns:?} is {:?}, redefined as {:?}",
                        space.profile.kind, profile.kind
                    )));
                }
                space.profile = profile;
            }
            None => {
                state.insert(
                    ns.to_string(),
                    Namespace {
                        profile,
                        records: BTreeMap::new(),
                        next_gen: 0,
                    },
                );
            }
        }
        Ok(())
    }

    fn append(&self, ns: &str, key: u64, value: &[u8]) -> Result<u64> {
        self.with_ns(ns, |space| Self::append_locked(space, ns, key, value))
    }

    fn commit(&self, batch: &[BatchEntry]) -> Result<()> {
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        // Validate the whole batch first so a bad entry can't leave a
        // partial in-memory application (files can only promise a
        // durable prefix; the map can do better for free).
        let mut staged: BTreeMap<&str, u64> = BTreeMap::new();
        for entry in batch {
            let space = state
                .get(&entry.ns)
                .ok_or_else(|| StorageError::UnknownNamespace(entry.ns.clone()))?;
            if space.profile.kind == NamespaceKind::Log {
                let last = staged
                    .get(entry.ns.as_str())
                    .copied()
                    .or_else(|| space.records.keys().next_back().copied());
                if let Some(last) = last {
                    if entry.key <= last {
                        return Err(StorageError::NonMonotonicKey {
                            ns: entry.ns.clone(),
                            key: entry.key,
                            last,
                        });
                    }
                }
                staged.insert(&entry.ns, entry.key);
            }
        }
        for entry in batch {
            let space = state.get_mut(&entry.ns).unwrap();
            Self::append_locked(space, &entry.ns, entry.key, &entry.value)?;
        }
        Ok(())
    }

    fn get(&self, ns: &str, key: u64) -> Result<Option<Vec<u8>>> {
        self.with_ns(ns, |space| Ok(space.records.get(&key).cloned()))
    }

    fn scan(&self, ns: &str, lo: u64, hi: u64) -> Result<Vec<Record>> {
        self.with_ns(ns, |space| {
            Ok(space
                .records
                .range(lo..=hi)
                .map(|(&key, value)| Record {
                    key,
                    value: value.clone(),
                })
                .collect())
        })
    }

    fn latest(&self, ns: &str) -> Result<Option<Record>> {
        self.with_ns(ns, |space| {
            Ok(space
                .records
                .iter()
                .next_back()
                .map(|(&key, value)| Record {
                    key,
                    value: value.clone(),
                }))
        })
    }

    fn len(&self, ns: &str) -> Result<u64> {
        self.with_ns(ns, |space| Ok(space.records.len() as u64))
    }

    fn retain(&self, ns: &str) -> Result<Pruned> {
        self.with_ns(ns, |space| {
            let sizes: Vec<(u64, u64)> = space
                .records
                .iter()
                .map(|(&k, v)| (k, v.len() as u64))
                .collect();
            let Some(cut) = space.profile.retention.cutoff(&sizes) else {
                return Ok(Pruned::default());
            };
            let mut pruned = Pruned::default();
            while let Some((&k, v)) = space.records.iter().next() {
                if k >= cut {
                    break;
                }
                pruned.records += 1;
                pruned.bytes += v.len() as u64;
                space.records.remove(&k);
            }
            Ok(pruned)
        })
    }

    fn flush(&self) -> Result<()> {
        Ok(())
    }
}
