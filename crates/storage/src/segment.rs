//! The indexed-segment backend: months of history in bounded disk.
//!
//! Each namespace is a directory of append-only segment files named
//! `seg-<lo>-<hi>.seg`, where `lo..=hi` is the range of *file sequence
//! numbers* the segment covers — a freshly written segment covers just
//! its own number; a compacted segment covers every input it merged,
//! which is what makes crash recovery deterministic (see below). A
//! segment holds length-prefixed, checksummed records:
//!
//! ```text
//! "RCSEG1\0\0"                      8-byte file header
//! [u32 len][u64 key][u32 fnv1a][payload]   repeated, big-endian
//! ```
//!
//! * **Appends** go to the active (newest) segment, flushed per record;
//!   a crash can tear only the final record of the active segment,
//!   which open-time validation truncates away. A torn or corrupt
//!   record anywhere else is reported as [`StorageError::Corrupt`].
//! * **Rotation** seals the active segment (fsync) once it exceeds the
//!   configured size or record count and starts a new one.
//! * **Compaction** is background-free: after a rotation, if enough
//!   sealed segments have piled up, the two oldest are merged into a
//!   covering segment (written to a temp file, fsynced, renamed, then
//!   the inputs deleted and the directory fsynced). A crash at any
//!   point self-heals on open: a leftover `.tmp` is deleted, and a
//!   completed covering segment supersedes any file whose range it
//!   contains, so surviving inputs are swept then.
//! * **Retention** drops whole oldest segments (count/byte bounds are
//!   therefore segment-granular) and maintains a logical `min_key`
//!   cutoff — persisted in the namespace's `meta` file — for the exact
//!   key-based cut, including inside the active segment.
//! * A **sparse in-segment index** (every Nth record's key and offset)
//!   keeps point lookups and range scans from replaying whole
//!   segments.

use crate::{
    fnv1a, sync_dir, validate_ns, BatchEntry, NamespaceKind, NamespaceProfile, Pruned, Record,
    Result, StorageBackend, StorageError,
};
use std::collections::BTreeMap;
use std::fs::{self, File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

const MAGIC: [u8; 8] = *b"RCSEG1\0\0";
const REC_HEADER: usize = 4 + 8 + 4;

/// Tuning knobs for [`SegmentBackend`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SegmentOptions {
    /// Seal the active segment once its file exceeds this many bytes.
    pub max_segment_bytes: u64,
    /// Seal the active segment once it holds this many records.
    pub max_segment_records: u64,
    /// Merge the two oldest sealed segments once this many are sealed.
    pub compact_sealed_segments: usize,
    /// Index every Nth record inside a segment.
    pub index_every: u32,
}

impl Default for SegmentOptions {
    fn default() -> Self {
        SegmentOptions {
            max_segment_bytes: 256 << 10,
            max_segment_records: 4096,
            compact_sealed_segments: 8,
            index_every: 16,
        }
    }
}

#[derive(Debug)]
struct SegMeta {
    lo: u32,
    hi: u32,
    path: PathBuf,
    first_key: u64,
    last_key: u64,
    records: u64,
    bytes: u64,
    /// Records/bytes of this segment below the namespace `min_key`.
    cut_records: u64,
    cut_bytes: u64,
    /// Sparse `(key, file offset)` pairs, always including the first
    /// and last record.
    index: Vec<(u64, u64)>,
    file_len: u64,
    last_off: u64,
}

impl SegMeta {
    fn live_records(&self) -> u64 {
        self.records - self.cut_records
    }
    fn live_bytes(&self) -> u64 {
        self.bytes - self.cut_bytes
    }
}

#[derive(Debug)]
struct SegNs {
    profile: NamespaceProfile,
    dir: PathBuf,
    /// Keys below this are logically pruned (0 = none).
    min_key: u64,
    sealed: Vec<SegMeta>,
    active: Option<(SegMeta, File)>,
    next_file: u32,
    next_snap_key: u64,
}

/// The indexed-segment [`StorageBackend`]. See the module docs.
#[derive(Debug)]
pub struct SegmentBackend {
    root: PathBuf,
    options: SegmentOptions,
    spaces: Mutex<BTreeMap<String, SegNs>>,
}

fn seg_name(lo: u32, hi: u32) -> String {
    format!("seg-{lo:06}-{hi:06}.seg")
}

fn parse_seg_name(name: &str) -> Option<(u32, u32)> {
    let body = name.strip_prefix("seg-")?.strip_suffix(".seg")?;
    let (lo, hi) = body.split_once('-')?;
    if lo.len() != 6 || hi.len() != 6 {
        return None;
    }
    let (lo, hi) = (lo.parse().ok()?, hi.parse().ok()?);
    (lo <= hi).then_some((lo, hi))
}

fn encode_record(key: u64, payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(REC_HEADER + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    out.extend_from_slice(&key.to_be_bytes());
    out.extend_from_slice(&fnv1a(payload).to_be_bytes());
    out.extend_from_slice(payload);
    out
}

/// Walks the records of segment bytes starting at `offset`, calling
/// `visit(key, offset, payload)` until it returns `false`. Returns the
/// offset of the first byte that does *not* parse as a complete, valid
/// record (== `bytes.len()` when the file is clean).
fn walk(bytes: &[u8], mut offset: usize, mut visit: impl FnMut(u64, u64, &[u8]) -> bool) -> usize {
    loop {
        if bytes.len() < offset + REC_HEADER {
            return offset;
        }
        let len = u32::from_be_bytes(bytes[offset..offset + 4].try_into().unwrap()) as usize;
        let key = u64::from_be_bytes(bytes[offset + 4..offset + 12].try_into().unwrap());
        let crc = u32::from_be_bytes(bytes[offset + 12..offset + 16].try_into().unwrap());
        let end = offset + REC_HEADER + len;
        if bytes.len() < end {
            return offset;
        }
        let payload = &bytes[offset + REC_HEADER..end];
        if fnv1a(payload) != crc {
            return offset;
        }
        if !visit(key, offset as u64, payload) {
            return end;
        }
        offset = end;
    }
}

impl SegmentBackend {
    /// Opens (creating) the backend rooted at `dir` with default
    /// [`SegmentOptions`].
    pub fn new(dir: impl Into<PathBuf>) -> Result<SegmentBackend> {
        SegmentBackend::with_options(dir, SegmentOptions::default())
    }

    /// Opens with explicit tuning options.
    pub fn with_options(
        dir: impl Into<PathBuf>,
        options: SegmentOptions,
    ) -> Result<SegmentBackend> {
        let root = dir.into();
        fs::create_dir_all(&root)?;
        Ok(SegmentBackend {
            root,
            options,
            spaces: Mutex::new(BTreeMap::new()),
        })
    }

    /// The backing directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    fn meta_path(dir: &Path) -> PathBuf {
        dir.join("meta")
    }

    fn read_min_key(dir: &Path) -> Result<u64> {
        match fs::read_to_string(Self::meta_path(dir)) {
            Ok(text) => text
                .trim()
                .strip_prefix("min_key=")
                .and_then(|v| v.parse().ok())
                .ok_or_else(|| StorageError::Corrupt(format!("bad meta file in {dir:?}"))),
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Ok(0),
            Err(e) => Err(e.into()),
        }
    }

    fn write_min_key(dir: &Path, min_key: u64) -> Result<()> {
        let tmp = dir.join("meta.tmp");
        {
            let mut f = File::create(&tmp)?;
            writeln!(f, "min_key={min_key}")?;
            f.sync_all()?;
        }
        fs::rename(&tmp, Self::meta_path(dir))?;
        sync_dir(dir)?;
        Ok(())
    }

    /// Validates one segment file and builds its metadata. `tolerant`
    /// (active segment) truncates a torn tail instead of erroring, and
    /// returns `None` after discarding a file too short to hold the
    /// magic — a crash during segment creation leaves a partial magic
    /// behind, and such a file never held a committed record.
    fn open_segment(
        &self,
        path: &Path,
        lo: u32,
        hi: u32,
        min_key: u64,
        tolerant: bool,
    ) -> Result<Option<SegMeta>> {
        let bytes = fs::read(path)?;
        if tolerant && bytes.len() < MAGIC.len() {
            fs::remove_file(path)?;
            return Ok(None);
        }
        if bytes.len() < MAGIC.len() || bytes[..MAGIC.len()] != MAGIC {
            return Err(StorageError::Corrupt(format!(
                "{path:?}: bad segment magic"
            )));
        }
        let mut meta = SegMeta {
            lo,
            hi,
            path: path.to_path_buf(),
            first_key: 0,
            last_key: 0,
            records: 0,
            bytes: 0,
            cut_records: 0,
            cut_bytes: 0,
            index: Vec::new(),
            file_len: 0,
            last_off: 0,
        };
        let every = self.options.index_every.max(1);
        let end = walk(&bytes, MAGIC.len(), |key, off, payload| {
            if meta.records == 0 {
                meta.first_key = key;
            }
            if meta.records.is_multiple_of(u64::from(every)) {
                meta.index.push((key, off));
            }
            meta.last_key = key;
            meta.last_off = off;
            meta.records += 1;
            meta.bytes += payload.len() as u64;
            if key < min_key {
                meta.cut_records += 1;
                meta.cut_bytes += payload.len() as u64;
            }
            true
        });
        if end != bytes.len() {
            if !tolerant {
                return Err(StorageError::Corrupt(format!(
                    "{path:?}: invalid record at byte {end}"
                )));
            }
            // Torn tail on the active segment: truncate to the last
            // complete record.
            let f = OpenOptions::new().write(true).open(path)?;
            f.set_len(end as u64)?;
            f.sync_all()?;
        }
        meta.file_len = end as u64;
        Ok(Some(meta))
    }

    fn open_ns(&self, ns: &str, profile: NamespaceProfile) -> Result<SegNs> {
        let dir = self.root.join(ns);
        fs::create_dir_all(&dir)?;
        let min_key = Self::read_min_key(&dir)?;
        let mut files: Vec<(u32, u32, PathBuf)> = Vec::new();
        for entry in fs::read_dir(&dir)? {
            let entry = entry?;
            let name = entry.file_name().to_string_lossy().into_owned();
            if name.ends_with(".tmp") {
                // Crash leftover: never renamed, never committed.
                let _ = fs::remove_file(entry.path());
            } else if let Some((lo, hi)) = parse_seg_name(&name) {
                files.push((lo, hi, entry.path()));
            }
        }
        // Widest range first for equal `lo`, so a covering (compacted)
        // segment is visited before any file it contains.
        files.sort_by(|a, b| a.0.cmp(&b.0).then(b.1.cmp(&a.1)));
        // A covering segment supersedes any file whose range it
        // contains — the surviving inputs of an interrupted compaction
        // are swept here.
        let mut keep: Vec<(u32, u32, PathBuf)> = Vec::new();
        for (lo, hi, path) in files {
            let superseded = keep
                .iter()
                .any(|&(klo, khi, _)| klo <= lo && hi <= khi && (klo, khi) != (lo, hi));
            if superseded {
                let _ = fs::remove_file(&path);
                continue;
            }
            // A covering segment always precedes its contained files,
            // so anything still overlapping the kept tail is real
            // corruption, not compaction leftovers.
            if let Some(&(_, phi, _)) = keep.last() {
                if lo <= phi {
                    return Err(StorageError::Corrupt(format!(
                        "{dir:?}: overlapping segments ..{phi:06} and {lo:06}.."
                    )));
                }
            }
            keep.push((lo, hi, path));
        }
        let mut sealed = Vec::new();
        let count = keep.len();
        let mut active = None;
        let mut next_file = 1u32;
        let mut last_key_overall = None;
        for (i, (lo, hi, path)) in keep.into_iter().enumerate() {
            let tolerant = i + 1 == count;
            let Some(meta) = self.open_segment(&path, lo, hi, min_key, tolerant)? else {
                next_file = hi + 1;
                continue;
            };
            if let Some(last) = last_key_overall {
                if meta.records > 0 && meta.first_key <= last {
                    return Err(StorageError::Corrupt(format!(
                        "{path:?}: keys regress across segments"
                    )));
                }
            }
            if meta.records > 0 {
                last_key_overall = Some(meta.last_key);
            }
            next_file = hi + 1;
            if tolerant {
                let mut f = OpenOptions::new().write(true).open(&path)?;
                f.seek(SeekFrom::End(0))?;
                active = Some((meta, f));
            } else {
                sealed.push(meta);
            }
        }
        let next_snap_key = last_key_overall.map_or(0, |k| k + 1);
        Ok(SegNs {
            profile,
            dir,
            min_key,
            sealed,
            active,
            next_file,
            next_snap_key,
        })
    }

    fn with_ns<T>(&self, ns: &str, f: impl FnOnce(&mut SegNs) -> Result<T>) -> Result<T> {
        let mut spaces = self.spaces.lock().unwrap_or_else(|e| e.into_inner());
        let space = spaces
            .get_mut(ns)
            .ok_or_else(|| StorageError::UnknownNamespace(ns.to_string()))?;
        f(space)
    }

    fn start_segment(space: &mut SegNs) -> Result<()> {
        let n = space.next_file;
        space.next_file += 1;
        let path = space.dir.join(seg_name(n, n));
        let mut f = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(&path)?;
        f.write_all(&MAGIC)?;
        f.flush()?;
        space.active = Some((
            SegMeta {
                lo: n,
                hi: n,
                path,
                first_key: 0,
                last_key: 0,
                records: 0,
                bytes: 0,
                cut_records: 0,
                cut_bytes: 0,
                index: Vec::new(),
                file_len: MAGIC.len() as u64,
                last_off: 0,
            },
            f,
        ));
        Ok(())
    }

    fn last_key(space: &SegNs) -> Option<u64> {
        space
            .active
            .as_ref()
            .filter(|(m, _)| m.records > 0)
            .map(|(m, _)| m.last_key)
            .or_else(|| {
                space
                    .sealed
                    .iter()
                    .rev()
                    .find(|m| m.records > 0)
                    .map(|m| m.last_key)
            })
    }

    fn append_locked(&self, ns: &str, space: &mut SegNs, key: u64, value: &[u8]) -> Result<u64> {
        let key = match space.profile.kind {
            NamespaceKind::Log => {
                if let Some(last) = Self::last_key(space) {
                    if key <= last {
                        return Err(StorageError::NonMonotonicKey {
                            ns: ns.to_string(),
                            key,
                            last,
                        });
                    }
                }
                key
            }
            NamespaceKind::Snapshot => {
                let k = space.next_snap_key;
                space.next_snap_key += 1;
                k
            }
        };
        if space.active.is_none() {
            Self::start_segment(space)?;
        }
        let every = u64::from(self.options.index_every.max(1));
        {
            let (meta, file) = space.active.as_mut().unwrap();
            let rec = encode_record(key, value);
            file.write_all(&rec)?;
            file.flush()?;
            if meta.records == 0 {
                meta.first_key = key;
            }
            if meta.records % every == 0 {
                meta.index.push((key, meta.file_len));
            }
            meta.last_key = key;
            meta.last_off = meta.file_len;
            meta.records += 1;
            meta.bytes += value.len() as u64;
            meta.file_len += rec.len() as u64;
        }
        if space.profile.kind == NamespaceKind::Snapshot {
            // Snapshot generations are fsynced per append (the commit
            // contract) and auto-capped via the logical cutoff.
            space.active.as_mut().unwrap().1.sync_all()?;
            if let Some(cap) = space.profile.retention.max_records {
                let cut = key + 1 - cap.max(1).min(key + 1);
                if cut > space.min_key {
                    self.set_min_key(space, cut)?;
                    self.drop_dead_segments(space)?;
                }
            }
        }
        self.maybe_rotate(space)?;
        Ok(key)
    }

    fn maybe_rotate(&self, space: &mut SegNs) -> Result<()> {
        let rotate = space.active.as_ref().is_some_and(|(m, _)| {
            m.records >= self.options.max_segment_records
                || m.file_len >= self.options.max_segment_bytes + MAGIC.len() as u64
        });
        if !rotate {
            return Ok(());
        }
        let (meta, file) = space.active.take().unwrap();
        file.sync_all()?;
        sync_dir(&space.dir)?;
        space.sealed.push(meta);
        if space.sealed.len() >= self.options.compact_sealed_segments.max(2) {
            self.compact_oldest(space)?;
        }
        Ok(())
    }

    /// Merges the two oldest sealed segments into one covering segment.
    fn compact_oldest(&self, space: &mut SegNs) -> Result<()> {
        if space.sealed.len() < 2 {
            return Ok(());
        }
        let a = &space.sealed[0];
        let b = &space.sealed[1];
        let (lo, hi) = (a.lo, b.hi);
        let out_path = space.dir.join(seg_name(lo, hi));
        let tmp = space.dir.join(format!("{}.tmp", seg_name(lo, hi)));
        let every = u64::from(self.options.index_every.max(1));
        let min_key = space.min_key;
        let mut merged = SegMeta {
            lo,
            hi,
            path: out_path.clone(),
            first_key: 0,
            last_key: 0,
            records: 0,
            bytes: 0,
            cut_records: 0,
            cut_bytes: 0,
            index: Vec::new(),
            file_len: MAGIC.len() as u64,
            last_off: 0,
        };
        {
            let mut out = File::create(&tmp)?;
            out.write_all(&MAGIC)?;
            for seg in &space.sealed[..2] {
                let bytes = fs::read(&seg.path)?;
                let end = walk(&bytes, MAGIC.len(), |key, _, payload| {
                    if key < min_key {
                        return true; // logically pruned: drop physically
                    }
                    let rec = encode_record(key, payload);
                    out.write_all(&rec).expect("compaction write");
                    if merged.records == 0 {
                        merged.first_key = key;
                    }
                    if merged.records.is_multiple_of(every) {
                        merged.index.push((key, merged.file_len));
                    }
                    merged.last_key = key;
                    merged.last_off = merged.file_len;
                    merged.records += 1;
                    merged.bytes += payload.len() as u64;
                    merged.file_len += rec.len() as u64;
                    true
                });
                if end != bytes.len() {
                    return Err(StorageError::Corrupt(format!(
                        "{:?}: invalid record at byte {end} during compaction",
                        seg.path
                    )));
                }
            }
            out.sync_all()?;
        }
        // Commit point: once the covering name exists, the inputs are
        // superseded even if we crash before deleting them.
        fs::rename(&tmp, &out_path)?;
        sync_dir(&space.dir)?;
        let a = space.sealed.remove(0);
        let b = space.sealed.remove(0);
        let _ = fs::remove_file(&a.path);
        let _ = fs::remove_file(&b.path);
        sync_dir(&space.dir)?;
        space.sealed.insert(0, merged);
        Ok(())
    }

    fn set_min_key(&self, space: &mut SegNs, min_key: u64) -> Result<()> {
        if min_key <= space.min_key {
            return Ok(());
        }
        Self::write_min_key(&space.dir, min_key)?;
        space.min_key = min_key;
        for meta in space
            .sealed
            .iter_mut()
            .chain(space.active.as_mut().map(|(m, _)| m))
        {
            if meta.records == 0 || meta.first_key >= min_key {
                continue;
            }
            if meta.last_key < min_key {
                meta.cut_records = meta.records;
                meta.cut_bytes = meta.bytes;
                continue;
            }
            // The cutoff falls inside this segment: count exactly.
            let bytes = fs::read(&meta.path)?;
            let (mut cr, mut cb) = (0u64, 0u64);
            walk(&bytes, MAGIC.len(), |key, _, payload| {
                if key < min_key {
                    cr += 1;
                    cb += payload.len() as u64;
                    true
                } else {
                    false
                }
            });
            meta.cut_records = cr;
            meta.cut_bytes = cb;
        }
        Ok(())
    }

    /// Deletes sealed segments that are entirely below the cutoff.
    fn drop_dead_segments(&self, space: &mut SegNs) -> Result<()> {
        let mut changed = false;
        while let Some(first) = space.sealed.first() {
            if first.records > 0 && first.cut_records < first.records {
                break;
            }
            let dead = space.sealed.remove(0);
            let _ = fs::remove_file(&dead.path);
            changed = true;
        }
        if changed {
            sync_dir(&space.dir)?;
        }
        Ok(())
    }

    fn read_range(
        &self,
        meta: &SegMeta,
        min_key: u64,
        lo: u64,
        hi: u64,
        out: &mut Vec<Record>,
    ) -> Result<()> {
        if meta.records == 0 || meta.last_key < lo || meta.first_key > hi {
            return Ok(());
        }
        // Sparse index: start at the last indexed record <= lo.
        let start = match meta.index.partition_point(|&(k, _)| k <= lo) {
            0 => MAGIC.len() as u64,
            n => meta.index[n - 1].1,
        };
        let mut f = File::open(&meta.path)?;
        f.seek(SeekFrom::Start(start))?;
        let mut bytes = Vec::new();
        f.take(meta.file_len - start).read_to_end(&mut bytes)?;
        walk(&bytes, 0, |key, _, payload| {
            if key > hi {
                return false;
            }
            if key >= lo && key >= min_key {
                out.push(Record {
                    key,
                    value: payload.to_vec(),
                });
            }
            true
        });
        Ok(())
    }

    fn all_segments(space: &SegNs) -> impl DoubleEndedIterator<Item = &SegMeta> {
        space
            .sealed
            .iter()
            .chain(space.active.as_ref().map(|(m, _)| m))
    }
}

impl StorageBackend for SegmentBackend {
    fn name(&self) -> &'static str {
        "segment"
    }

    fn define(&self, ns: &str, profile: NamespaceProfile) -> Result<()> {
        validate_ns(ns)?;
        let mut spaces = self.spaces.lock().unwrap_or_else(|e| e.into_inner());
        if let Some(space) = spaces.get_mut(ns) {
            if space.profile.kind != profile.kind {
                return Err(StorageError::InvalidNamespace(format!(
                    "{ns:?} is {:?}, redefined as {:?}",
                    space.profile.kind, profile.kind
                )));
            }
            space.profile = profile;
            return Ok(());
        }
        let space = self.open_ns(ns, profile)?;
        spaces.insert(ns.to_string(), space);
        Ok(())
    }

    fn append(&self, ns: &str, key: u64, value: &[u8]) -> Result<u64> {
        let mut spaces = self.spaces.lock().unwrap_or_else(|e| e.into_inner());
        let space = spaces
            .get_mut(ns)
            .ok_or_else(|| StorageError::UnknownNamespace(ns.to_string()))?;
        self.append_locked(ns, space, key, value)
    }

    fn commit(&self, batch: &[BatchEntry]) -> Result<()> {
        let mut spaces = self.spaces.lock().unwrap_or_else(|e| e.into_inner());
        for entry in batch {
            let space = spaces
                .get_mut(&entry.ns)
                .ok_or_else(|| StorageError::UnknownNamespace(entry.ns.clone()))?;
            self.append_locked(&entry.ns, space, entry.key, &entry.value)?;
        }
        Ok(())
    }

    fn get(&self, ns: &str, key: u64) -> Result<Option<Vec<u8>>> {
        Ok(self.scan(ns, key, key)?.pop().map(|r| r.value))
    }

    fn scan(&self, ns: &str, lo: u64, hi: u64) -> Result<Vec<Record>> {
        self.with_ns(ns, |space| {
            let lo = lo.max(space.min_key);
            if lo > hi {
                return Ok(Vec::new());
            }
            let mut out = Vec::new();
            let metas: Vec<&SegMeta> = Self::all_segments(space).collect();
            for meta in metas {
                self.read_range(meta, space.min_key, lo, hi, &mut out)?;
            }
            Ok(out)
        })
    }

    fn latest(&self, ns: &str) -> Result<Option<Record>> {
        self.with_ns(ns, |space| {
            let candidate =
                Self::all_segments(space).rfind(|m| m.records > 0 && m.last_key >= space.min_key);
            let Some(meta) = candidate else {
                return Ok(None);
            };
            let mut f = File::open(&meta.path)?;
            f.seek(SeekFrom::Start(meta.last_off))?;
            let mut bytes = Vec::new();
            f.take(meta.file_len - meta.last_off)
                .read_to_end(&mut bytes)?;
            let mut rec = None;
            walk(&bytes, 0, |key, _, payload| {
                rec = Some(Record {
                    key,
                    value: payload.to_vec(),
                });
                false
            });
            Ok(rec)
        })
    }

    fn len(&self, ns: &str) -> Result<u64> {
        self.with_ns(ns, |space| {
            Ok(Self::all_segments(space).map(SegMeta::live_records).sum())
        })
    }

    fn retain(&self, ns: &str) -> Result<Pruned> {
        let mut spaces = self.spaces.lock().unwrap_or_else(|e| e.into_inner());
        let space = spaces
            .get_mut(ns)
            .ok_or_else(|| StorageError::UnknownNamespace(ns.to_string()))?;
        let policy = space.profile.retention;
        let before_records: u64 = Self::all_segments(space).map(SegMeta::live_records).sum();
        let before_bytes: u64 = Self::all_segments(space).map(SegMeta::live_bytes).sum();
        // Exact key-based cut first.
        if let Some(min_key) = policy.min_key {
            self.set_min_key(space, min_key)?;
        }
        // Count/byte bounds: drop whole oldest sealed segments while
        // over budget. The active segment never drops, so these bounds
        // are segment-granular (documented).
        loop {
            let live_records: u64 = Self::all_segments(space).map(SegMeta::live_records).sum();
            let live_bytes: u64 = Self::all_segments(space).map(SegMeta::live_bytes).sum();
            let over_records = policy.max_records.is_some_and(|m| live_records > m);
            let over_bytes = policy.max_bytes.is_some_and(|m| live_bytes > m);
            if !(over_records || over_bytes) {
                break;
            }
            let Some(first) = space.sealed.first() else {
                break;
            };
            if live_records <= first.live_records() {
                break; // never prune the namespace empty
            }
            let first_last = first.last_key;
            self.set_min_key(space, first_last + 1)?;
            self.drop_dead_segments(space)?;
            if space.sealed.first().map(|m| m.last_key) == Some(first_last) {
                break; // defensive: no progress
            }
        }
        self.drop_dead_segments(space)?;
        let after_records: u64 = Self::all_segments(space).map(SegMeta::live_records).sum();
        let after_bytes: u64 = Self::all_segments(space).map(SegMeta::live_bytes).sum();
        Ok(Pruned {
            records: before_records - after_records,
            bytes: before_bytes - after_bytes,
        })
    }

    fn flush(&self) -> Result<()> {
        let mut spaces = self.spaces.lock().unwrap_or_else(|e| e.into_inner());
        for space in spaces.values_mut() {
            if let Some((_, file)) = space.active.as_mut() {
                file.flush()?;
                file.sync_all()?;
            }
            sync_dir(&space.dir)?;
        }
        sync_dir(&self.root)?;
        Ok(())
    }
}
