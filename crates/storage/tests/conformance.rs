//! Runs the shared conformance suite (`storage::conformance`) against
//! all three in-tree backends. A backend that diverges on any
//! observable behavior — key ordering, scans, snapshot generations,
//! retention accounting, torn-tail recovery — fails here with its name
//! in the assertion message.

use storage::conformance::{fixtures, run_full_suite, temp_base};

fn run(name: &str) {
    let base = temp_base(&format!("conf-{name}"));
    let fix = fixtures(&base)
        .into_iter()
        .find(|f| f.name == name)
        .expect("fixture");
    run_full_suite(&fix);
    let _ = std::fs::remove_dir_all(&base);
}

#[test]
fn memory_backend_conforms() {
    run("memory");
}

#[test]
fn appendlog_backend_conforms() {
    run("appendlog");
}

#[test]
fn segment_backend_conforms() {
    run("segment");
}
