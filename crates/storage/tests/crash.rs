//! Crash-recovery behavior the conformance suite can't express
//! generically: mid-file corruption detection, interrupted snapshot
//! demotion, and every window of an interrupted segment compaction.

use std::fs;
use std::path::PathBuf;
use storage::{
    AppendLogBackend, NamespaceProfile, Retention, SegmentBackend, SegmentOptions, StorageBackend,
    StorageError,
};

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("roleclass-crash-{tag}-{}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    fs::create_dir_all(&dir).unwrap();
    dir
}

fn small() -> SegmentOptions {
    SegmentOptions {
        max_segment_bytes: 1 << 20,
        max_segment_records: 4,
        compact_sealed_segments: 3,
        index_every: 2,
    }
}

/// Drives enough appends through a segment namespace that at least one
/// compaction has produced a covering segment.
fn build_compacted(dir: &PathBuf) -> Vec<(u64, Vec<u8>)> {
    let b = SegmentBackend::with_options(dir, small()).unwrap();
    b.define("log", NamespaceProfile::log(Retention::unbounded()))
        .unwrap();
    let mut expect = Vec::new();
    // 12 records = three seals, which triggers exactly ONE compaction:
    // the covering segment holds keys 0..=7 and nothing newer.
    for key in 0..12u64 {
        let value = format!("record-{key}").into_bytes();
        b.append("log", key, &value).unwrap();
        expect.push((key, value));
    }
    b.flush().unwrap();
    let covering = fs::read_dir(dir.join("log"))
        .unwrap()
        .filter_map(|e| e.ok())
        .filter(|e| {
            let name = e.file_name().to_string_lossy().into_owned();
            name.starts_with("seg-") && {
                let body = name.trim_start_matches("seg-").trim_end_matches(".seg");
                let (lo, hi) = body.split_once('-').unwrap();
                lo != hi
            }
        })
        .count();
    assert!(covering >= 1, "the workload must trigger a compaction");
    expect
}

fn scan_all(b: &dyn StorageBackend) -> Vec<(u64, Vec<u8>)> {
    b.scan("log", 0, u64::MAX)
        .unwrap()
        .into_iter()
        .map(|r| (r.key, r.value))
        .collect()
}

#[test]
fn appendlog_mid_file_corruption_is_detected_not_misread() {
    let dir = temp_dir("log-corrupt");
    {
        let b = AppendLogBackend::new(&dir).unwrap();
        b.define("log", NamespaceProfile::log(Retention::unbounded()))
            .unwrap();
        for key in 0..4u64 {
            b.append("log", key, format!("v{key}").as_bytes()).unwrap();
        }
    }
    // Flip a payload byte in the middle of the file: the checksum must
    // catch it (a torn tail is the only corruption open() tolerates).
    let path = dir.join("log");
    let mut bytes = fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x20;
    fs::write(&path, &bytes).unwrap();
    let b = AppendLogBackend::new(&dir).unwrap();
    match b.define("log", NamespaceProfile::log(Retention::unbounded())) {
        Err(StorageError::Corrupt(_)) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn appendlog_interrupted_demotion_recovers_previous_generation() {
    let dir = temp_dir("snap-demote");
    {
        let b = AppendLogBackend::new(&dir).unwrap();
        b.define("ckpt", NamespaceProfile::snapshot(2)).unwrap();
        b.append("ckpt", 0, b"generation-one").unwrap();
        b.append("ckpt", 0, b"generation-two").unwrap();
    }
    // Crash window: the primary was demoted to .bak but the new temp
    // file was never promoted. Only the backup generation remains.
    fs::rename(dir.join("ckpt"), dir.join("ckpt.bak")).unwrap();
    fs::write(dir.join("ckpt.tmp"), b"torn-generation-three").unwrap();
    let b = AppendLogBackend::new(&dir).unwrap();
    b.define("ckpt", NamespaceProfile::snapshot(2)).unwrap();
    assert_eq!(b.len("ckpt").unwrap(), 1);
    assert_eq!(
        b.latest("ckpt").unwrap().unwrap().value,
        b"generation-two".to_vec(),
        "the surviving generation is served as the newest"
    );
    // The torn temp file was discarded, and the next append proceeds.
    assert!(!dir.join("ckpt.tmp").exists());
    b.append("ckpt", 0, b"generation-three").unwrap();
    assert_eq!(
        b.latest("ckpt").unwrap().unwrap().value,
        b"generation-three".to_vec()
    );
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn segment_crash_before_compaction_rename_discards_tmp() {
    let dir = temp_dir("seg-tmp");
    let expect = build_compacted(&dir);
    // Crash window: a compaction output existed only as a temp file.
    fs::write(
        dir.join("log").join("seg-000900-000901.seg.tmp"),
        b"half-written merge",
    )
    .unwrap();
    let b = SegmentBackend::with_options(&dir, small()).unwrap();
    b.define("log", NamespaceProfile::log(Retention::unbounded()))
        .unwrap();
    assert_eq!(scan_all(&b), expect, "data is bit-identical after recovery");
    assert!(!dir.join("log").join("seg-000900-000901.seg.tmp").exists());
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn segment_crash_after_compaction_rename_sweeps_superseded_inputs() {
    // Build two identical histories; A stops before the compaction,
    // B runs past it. Copying B's covering segment into A reproduces
    // the crash window where the merge committed but the inputs were
    // never deleted.
    let dir_a = temp_dir("seg-covered-a");
    let dir_b = temp_dir("seg-covered-b");
    let pre = {
        let b = SegmentBackend::with_options(&dir_a, small()).unwrap();
        b.define("log", NamespaceProfile::log(Retention::unbounded()))
            .unwrap();
        let mut expect = Vec::new();
        // 11 records: two sealed segments (0-3, 4-7) + active, one
        // append short of the third seal that triggers compaction.
        for key in 0..11u64 {
            let value = format!("record-{key}").into_bytes();
            b.append("log", key, &value).unwrap();
            expect.push((key, value));
        }
        b.flush().unwrap();
        expect
    };
    let expect = build_compacted(&dir_b);
    assert_eq!(pre, expect[..11].to_vec());
    let covering = fs::read_dir(dir_b.join("log"))
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .find(|n| {
            n.starts_with("seg-")
                && n.trim_start_matches("seg-")
                    .trim_end_matches(".seg")
                    .split_once('-')
                    .is_some_and(|(lo, hi)| lo != hi)
        })
        .expect("covering segment");
    fs::copy(
        dir_b.join("log").join(&covering),
        dir_a.join("log").join(&covering),
    )
    .unwrap();
    let inputs_before = fs::read_dir(dir_a.join("log")).unwrap().count();
    let b = SegmentBackend::with_options(&dir_a, small()).unwrap();
    b.define("log", NamespaceProfile::log(Retention::unbounded()))
        .unwrap();
    // Every record is present exactly once despite the duplicate files.
    assert_eq!(scan_all(&b), pre);
    let files_after = fs::read_dir(dir_a.join("log")).unwrap().count();
    assert!(
        files_after < inputs_before,
        "superseded input segments must be swept ({inputs_before} -> {files_after})"
    );
    let _ = fs::remove_dir_all(&dir_a);
    let _ = fs::remove_dir_all(&dir_b);
}

#[test]
fn segment_corruption_in_sealed_segment_is_detected() {
    let dir = temp_dir("seg-corrupt");
    build_compacted(&dir);
    // Corrupt a payload byte in the OLDEST segment (sealed, so open
    // must refuse rather than silently truncate history).
    let oldest = fs::read_dir(dir.join("log"))
        .unwrap()
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "seg"))
        .min()
        .unwrap();
    let mut bytes = fs::read(&oldest).unwrap();
    let n = bytes.len();
    bytes[n / 2] ^= 0x01;
    fs::write(&oldest, &bytes).unwrap();
    let b = SegmentBackend::with_options(&dir, small()).unwrap();
    match b.define("log", NamespaceProfile::log(Retention::unbounded())) {
        Err(StorageError::Corrupt(_)) => {}
        other => panic!("expected Corrupt, got {other:?}"),
    }
    let _ = fs::remove_dir_all(&dir);
}

#[test]
fn segment_retention_drops_whole_old_segments_with_accurate_counts() {
    let dir = temp_dir("seg-retain");
    let b = SegmentBackend::with_options(&dir, small()).unwrap();
    b.define(
        "log",
        NamespaceProfile::log(Retention::unbounded().keep_records(5)),
    )
    .unwrap();
    for key in 0..16u64 {
        b.append("log", key, format!("record-{key}").as_bytes())
            .unwrap();
    }
    let before = b.len("log").unwrap();
    let pruned = b.retain("log").unwrap();
    let after = b.len("log").unwrap();
    assert_eq!(pruned.records, before - after);
    assert!(after <= 5 || pruned.records > 0);
    assert_eq!(b.latest("log").unwrap().unwrap().key, 15);
    // The cut survives a restart (persisted min_key + deleted files).
    drop(b);
    let b = SegmentBackend::with_options(&dir, small()).unwrap();
    b.define("log", NamespaceProfile::log(Retention::unbounded()))
        .unwrap();
    assert_eq!(b.len("log").unwrap(), after);
    assert_eq!(b.latest("log").unwrap().unwrap().key, 15);
    let _ = fs::remove_dir_all(&dir);
}
