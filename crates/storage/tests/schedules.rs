//! Property tests: every backend tracks a reference model through
//! random append / flush / crash / reopen schedules.
//!
//! The crash model matches the documented contract: appends are
//! flushed per record, so a crash (simulated by tearing the tail of
//! the newest data file) destroys at most the final record. The model
//! therefore drops its last record on Crash and must agree with the
//! backend on every scan afterwards.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use storage::conformance::{fixtures, temp_base, Fixture};
use storage::{NamespaceProfile, Retention};

#[derive(Clone, Debug)]
enum Op {
    /// Append with a key `gap+1` above the previous one.
    Append {
        gap: u8,
        len: u8,
    },
    Flush,
    Reopen,
    /// Tear the tail of the newest data file, then reopen.
    Crash,
}

fn arb_op() -> impl Strategy<Value = Op> {
    (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(sel, gap, len)| match sel % 8 {
        0..=3 => Op::Append { gap, len },
        4 => Op::Flush,
        5 | 6 => Op::Reopen,
        _ => Op::Crash,
    })
}

fn check_schedule(fix: &Fixture, ops: &[Op], tag: u64) -> Result<(), TestCaseError> {
    let ns = format!("sched-{tag}");
    let mut model: Vec<(u64, Vec<u8>)> = Vec::new();
    let mut next_key = 0u64;
    let mut backend = fix.open();
    backend
        .define(&ns, NamespaceProfile::log(Retention::unbounded()))
        .unwrap();
    for op in ops {
        match op {
            Op::Append { gap, len } => {
                let key = next_key + u64::from(*gap);
                let value: Vec<u8> = (0..*len).map(|i| i ^ (key as u8)).collect();
                let assigned = backend.append(&ns, key, &value).unwrap();
                prop_assert_eq!(assigned, key);
                model.push((key, value));
                next_key = key + 1;
            }
            Op::Flush => backend.flush().unwrap(),
            Op::Reopen => {
                drop(backend);
                backend = fix.open();
                backend
                    .define(&ns, NamespaceProfile::log(Retention::unbounded()))
                    .unwrap();
            }
            Op::Crash => {
                if !fix.can_tear() || model.is_empty() {
                    continue;
                }
                drop(backend);
                fix.tear_tail(&ns);
                backend = fix.open();
                backend
                    .define(&ns, NamespaceProfile::log(Retention::unbounded()))
                    .unwrap();
                // The contract: a crash destroys AT MOST the final
                // record. A tear may also destroy nothing — e.g. the
                // newest file held no records yet — so resync the model
                // to whichever of the two permitted states survived.
                let survived = backend.len(&ns).unwrap();
                prop_assert!(
                    survived + 1 >= model.len() as u64 && survived <= model.len() as u64,
                    "{}: crash destroyed more than the final record ({} of {})",
                    fix.name,
                    survived,
                    model.len()
                );
                if survived < model.len() as u64 {
                    model.pop();
                }
                next_key = model.last().map_or(0, |(k, _)| k + 1);
            }
        }
        // The backend agrees with the model on every read path.
        let got: Vec<(u64, Vec<u8>)> = backend
            .scan(&ns, 0, u64::MAX)
            .unwrap()
            .into_iter()
            .map(|r| (r.key, r.value))
            .collect();
        prop_assert_eq!(&got, &model, "{} diverged from the model", fix.name);
        prop_assert_eq!(backend.len(&ns).unwrap(), model.len() as u64);
        let latest = backend.latest(&ns).unwrap().map(|r| (r.key, r.value));
        prop_assert_eq!(&latest, &model.last().cloned());
        if let Some((k, v)) = model.last() {
            let got = backend.get(&ns, *k).unwrap();
            prop_assert_eq!(got.as_ref(), Some(v));
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// One random schedule, replayed against all three backends.
    #[test]
    fn backends_track_the_model_through_crashy_schedules(
        ops in prop::collection::vec(arb_op(), 1..30),
        tag in any::<u64>(),
    ) {
        let base = temp_base(&format!("sched-{tag}"));
        for fix in fixtures(&base) {
            check_schedule(&fix, &ops, tag)?;
        }
        let _ = std::fs::remove_dir_all(&base);
    }
}
