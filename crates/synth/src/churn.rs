//! Connection-pattern churn operators.
//!
//! Section 5 motivates the correlation algorithm with specific kinds of
//! change: host arrivals, removals, role changes, and servers being
//! replaced or split for load sharing. Figure 5 exercises four concrete
//! changes on the Mazu network. These operators apply exactly those
//! changes to a [`SyntheticNetwork`], keeping the ground truth in sync so
//! correlation results can be validated.

use crate::model::SyntheticNetwork;
use flow::{ConnectionSets, HostAddr};

/// Swaps the connection patterns (and hence observed roles) of two hosts
/// — the paper's "Sales-1 and Eng-1 switch roles" / "swapped the roles of
/// unix_mail and ms_exchange by switching their IP addresses" scenario.
///
/// Ground-truth labels travel with the *behavior*: after the swap, `a`
/// plays `b`'s old role and vice versa.
///
/// # Panics
///
/// Panics if either host is unknown.
pub fn swap_hosts(net: &mut SyntheticNetwork, a: HostAddr, b: HostAddr) {
    assert!(net.connsets.contains(a) && net.connsets.contains(b));
    swap_in_connsets(&mut net.connsets, a, b);
    let role_a = net.truth.remove(a);
    let role_b = net.truth.remove(b);
    if let Some(r) = role_b {
        net.truth.assign(a, &r);
    }
    if let Some(r) = role_a {
        net.truth.assign(b, &r);
    }
    for hosts in net.hosts_by_role.values_mut() {
        for h in hosts.iter_mut() {
            if *h == a {
                *h = b;
            } else if *h == b {
                *h = a;
            }
        }
    }
}

fn swap_in_connsets(cs: &mut ConnectionSets, a: HostAddr, b: HostAddr) {
    let nbrs_a: Vec<HostAddr> = cs
        .neighbors(a)
        .map(|s| s.iter().collect())
        .unwrap_or_default();
    let nbrs_b: Vec<HostAddr> = cs
        .neighbors(b)
        .map(|s| s.iter().collect())
        .unwrap_or_default();
    // The mutual edge (if any) must be re-added exactly once — it is
    // visible from both endpoints' neighbor lists.
    let mutual = cs.pair_stats(a, b);
    let stats_a: Vec<_> = nbrs_a
        .iter()
        .filter(|&&n| n != b)
        .map(|&n| (n, cs.pair_stats(a, n).unwrap_or_default()))
        .collect();
    let stats_b: Vec<_> = nbrs_b
        .iter()
        .filter(|&&n| n != a)
        .map(|&n| (n, cs.pair_stats(b, n).unwrap_or_default()))
        .collect();
    cs.remove_host(a);
    cs.remove_host(b);
    cs.add_host(a);
    cs.add_host(b);
    for (n, s) in stats_a {
        cs.add_connection(b, n, s);
    }
    for (n, s) in stats_b {
        cs.add_connection(a, n, s);
    }
    if let Some(s) = mutual {
        cs.add_connection(a, b, s);
    }
}

/// Replaces `old` with a brand-new host `new` that inherits `old`'s
/// connections — the "replaced the old NT server with a new server"
/// scenario.
///
/// # Panics
///
/// Panics if `old` is unknown or `new` already exists.
pub fn replace_host(net: &mut SyntheticNetwork, old: HostAddr, new: HostAddr) {
    assert!(net.connsets.contains(old), "old host unknown");
    assert!(!net.connsets.contains(new), "new host already present");
    let nbrs: Vec<(HostAddr, _)> = net
        .connsets
        .neighbors(old)
        .map(|s| {
            s.iter()
                .map(|n| (n, net.connsets.pair_stats(old, n).unwrap_or_default()))
                .collect()
        })
        .unwrap_or_default();
    net.connsets.remove_host(old);
    net.connsets.add_host(new);
    for (n, s) in nbrs {
        net.connsets.add_connection(new, n, s);
    }
    if let Some(role) = net.truth.remove(old) {
        net.truth.assign(new, &role);
        if let Some(hosts) = net.hosts_by_role.get_mut(&role) {
            for h in hosts.iter_mut() {
                if *h == old {
                    *h = new;
                }
            }
        }
    }
}

/// Removes a host entirely — the "removed an old admin machine" scenario.
///
/// Returns `true` if the host existed.
pub fn remove_host(net: &mut SyntheticNetwork, h: HostAddr) -> bool {
    let existed = net.connsets.remove_host(h);
    if let Some(role) = net.truth.remove(h) {
        if let Some(hosts) = net.hosts_by_role.get_mut(&role) {
            hosts.retain(|&x| x != h);
        }
    }
    existed
}

/// Adds a new host that copies the connection habits of `template` — the
/// "brought in a new eng machine" scenario.
///
/// # Panics
///
/// Panics if `template` is unknown or `new` already exists.
pub fn add_host_like(net: &mut SyntheticNetwork, template: HostAddr, new: HostAddr) {
    assert!(net.connsets.contains(template), "template host unknown");
    assert!(!net.connsets.contains(new), "new host already present");
    let nbrs: Vec<HostAddr> = net
        .connsets
        .neighbors(template)
        .map(|s| s.iter().collect())
        .unwrap_or_default();
    net.connsets.add_host(new);
    for n in nbrs {
        if n != new {
            net.connsets.add_pair(new, n);
        }
    }
    if let Some(role) = net.truth.role_of(template).map(str::to_string) {
        net.truth.assign(new, &role);
        if let Some(hosts) = net.hosts_by_role.get_mut(&role) {
            hosts.push(new);
        }
    }
}

/// Splits a server into two load-sharing replicas — Section 5.1's "an
/// existing server machine may be replaced by two new machines that do
/// load sharing among client machines". Neighbors of `old` are dealt
/// alternately to `new1` and `new2`.
///
/// # Panics
///
/// Panics if `old` is unknown or either replica already exists.
pub fn split_server(net: &mut SyntheticNetwork, old: HostAddr, new1: HostAddr, new2: HostAddr) {
    assert!(net.connsets.contains(old), "old host unknown");
    assert!(
        !net.connsets.contains(new1) && !net.connsets.contains(new2),
        "replica already present"
    );
    assert!(new1 != new2, "replicas must differ");
    let nbrs: Vec<HostAddr> = net
        .connsets
        .neighbors(old)
        .map(|s| s.iter().collect())
        .unwrap_or_default();
    net.connsets.remove_host(old);
    net.connsets.add_host(new1);
    net.connsets.add_host(new2);
    for (i, n) in nbrs.into_iter().enumerate() {
        let target = if i % 2 == 0 { new1 } else { new2 };
        net.connsets.add_pair(target, n);
    }
    if let Some(role) = net.truth.remove(old) {
        net.truth.assign(new1, &role);
        net.truth.assign(new2, &role);
        if let Some(hosts) = net.hosts_by_role.get_mut(&role) {
            hosts.retain(|&x| x != old);
            hosts.push(new1);
            hosts.push(new2);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::figure1;

    #[test]
    fn swap_exchanges_connection_sets() {
        let mut net = figure1(3, 3);
        let mail = net.host("mail");
        let db = net.host("sales_db");
        let mail_deg = net.connsets.degree(mail).unwrap();
        let db_deg = net.connsets.degree(db).unwrap();
        swap_hosts(&mut net, mail, db);
        assert_eq!(net.connsets.degree(mail), Some(db_deg));
        assert_eq!(net.connsets.degree(db), Some(mail_deg));
        // Ground truth followed the behavior.
        assert_eq!(net.truth.role_of(mail), Some("sales_db"));
        assert_eq!(net.truth.role_of(db), Some("mail"));
    }

    #[test]
    fn swap_preserves_edge_between_the_two() {
        let mut net = figure1(2, 2);
        let s = net.role_hosts("sales")[0];
        let mail = net.host("mail");
        assert!(net.connsets.connected(s, mail));
        swap_hosts(&mut net, s, mail);
        // They were neighbors before, they stay neighbors after.
        assert!(net.connsets.connected(s, mail));
    }

    #[test]
    fn replace_transfers_connections() {
        let mut net = figure1(3, 3);
        let web = net.host("web");
        let deg = net.connsets.degree(web).unwrap();
        let new = HostAddr::from_octets(10, 9, 9, 9);
        replace_host(&mut net, web, new);
        assert!(!net.connsets.contains(web));
        assert_eq!(net.connsets.degree(new), Some(deg));
        assert_eq!(net.truth.role_of(new), Some("web"));
        assert_eq!(net.host("web"), new);
    }

    #[test]
    fn remove_host_shrinks_population() {
        let mut net = figure1(3, 3);
        let victim = net.role_hosts("sales")[0];
        assert!(remove_host(&mut net, victim));
        assert!(!remove_host(&mut net, victim));
        assert_eq!(net.host_count(), 9);
        assert_eq!(net.role_hosts("sales").len(), 2);
    }

    #[test]
    fn add_host_like_copies_habits() {
        let mut net = figure1(3, 3);
        let template = net.role_hosts("eng")[0];
        let new = HostAddr::from_octets(10, 9, 9, 1);
        add_host_like(&mut net, template, new);
        assert_eq!(net.connsets.degree(new), net.connsets.degree(template));
        assert_eq!(net.truth.role_of(new), Some("eng"));
        assert_eq!(net.host_count(), 11);
    }

    #[test]
    fn split_server_deals_neighbors() {
        let mut net = figure1(4, 4);
        let mail = net.host("mail");
        let deg = net.connsets.degree(mail).unwrap();
        let r1 = HostAddr::from_octets(10, 9, 0, 1);
        let r2 = HostAddr::from_octets(10, 9, 0, 2);
        split_server(&mut net, mail, r1, r2);
        assert!(!net.connsets.contains(mail));
        let d1 = net.connsets.degree(r1).unwrap();
        let d2 = net.connsets.degree(r2).unwrap();
        assert_eq!(d1 + d2, deg);
        assert!(d1.abs_diff(d2) <= 1);
        assert_eq!(net.truth.role_of(r1), Some("mail"));
        assert_eq!(net.truth.role_of(r2), Some("mail"));
    }
}
