//! Deterministic fault injection for the ingestion pipeline.
//!
//! Real probes fail in characteristic ways: they time out, silently
//! drop the tail of a window, double-report flows after an export
//! retry, or drift off the aggregator's clock. These wrappers inject
//! exactly those faults around any inner [`Probe`], driven by a seeded
//! RNG so every chaos run is reproducible bit for bit.
//!
//! They are used by the aggregator's chaos integration tests to assert
//! that supervised ingestion (retry, quarantine, degraded-window
//! classification) keeps the correlation chain intact under fire.

use aggregator::transport::frame::{self, FrameType};
use aggregator::{Probe, ProbeError};
use flow::FlowRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// A probe that fails polls at a seeded, configurable rate.
///
/// Each poll *attempt* independently fails with probability
/// `fail_prob` (so the supervisor's retries genuinely re-roll). All
/// failures are [`ProbeError::Transient`]; use
/// [`FlakyProbe::fatal_after`] to additionally kill the probe for good
/// after a fixed number of poll attempts.
pub struct FlakyProbe<P> {
    inner: P,
    name: String,
    rng: StdRng,
    fail_prob: f64,
    fatal_after: Option<u64>,
    attempts: u64,
}

impl<P: Probe> FlakyProbe<P> {
    /// Wraps `inner`, failing each poll attempt with `fail_prob`.
    pub fn new(inner: P, fail_prob: f64, seed: u64) -> Self {
        let name = format!("flaky({})", inner.name());
        FlakyProbe {
            inner,
            name,
            rng: StdRng::seed_from_u64(seed),
            fail_prob: fail_prob.clamp(0.0, 1.0),
            fatal_after: None,
            attempts: 0,
        }
    }

    /// After `n` poll attempts, every further poll fails fatally —
    /// simulating a device that flaps for a while and then dies.
    pub fn fatal_after(mut self, n: u64) -> Self {
        self.fatal_after = Some(n);
        self
    }

    /// Poll attempts made so far (successful or not).
    pub fn attempts(&self) -> u64 {
        self.attempts
    }
}

impl<P: Probe> Probe for FlakyProbe<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, from_ms: u64, to_ms: u64) -> Result<Vec<FlowRecord>, ProbeError> {
        self.attempts += 1;
        if let Some(n) = self.fatal_after {
            if self.attempts > n {
                return Err(ProbeError::Fatal("injected: device died".to_string()));
            }
        }
        if self.rng.gen_bool(self.fail_prob) {
            return Err(ProbeError::Transient("injected: poll timeout".to_string()));
        }
        self.inner.poll(from_ms, to_ms)
    }

    fn horizon_ms(&self) -> Option<u64> {
        self.inner.horizon_ms()
    }
}

/// A probe that silently drops a seeded fraction of each window's
/// records — the *undetectable* failure mode (the poll still succeeds),
/// which is why degraded-window accounting tracks record counts too.
pub struct TruncatingProbe<P> {
    inner: P,
    name: String,
    rng: StdRng,
    drop_prob: f64,
}

impl<P: Probe> TruncatingProbe<P> {
    /// Wraps `inner`, dropping each delivered record with `drop_prob`.
    pub fn new(inner: P, drop_prob: f64, seed: u64) -> Self {
        let name = format!("truncating({})", inner.name());
        TruncatingProbe {
            inner,
            name,
            rng: StdRng::seed_from_u64(seed),
            drop_prob: drop_prob.clamp(0.0, 1.0),
        }
    }
}

impl<P: Probe> Probe for TruncatingProbe<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, from_ms: u64, to_ms: u64) -> Result<Vec<FlowRecord>, ProbeError> {
        let records = self.inner.poll(from_ms, to_ms)?;
        let rng = &mut self.rng;
        let p = self.drop_prob;
        Ok(records.into_iter().filter(|_| !rng.gen_bool(p)).collect())
    }

    fn horizon_ms(&self) -> Option<u64> {
        self.inner.horizon_ms()
    }
}

/// A probe that re-delivers records — an export path that retries after
/// an ack loss double-reports flows. Connection-set construction must
/// be tolerant (pair stats inflate, the *set structure* must not).
pub struct DuplicatingProbe<P> {
    inner: P,
    name: String,
    rng: StdRng,
    dup_prob: f64,
}

impl<P: Probe> DuplicatingProbe<P> {
    /// Wraps `inner`, duplicating each record with `dup_prob`.
    pub fn new(inner: P, dup_prob: f64, seed: u64) -> Self {
        let name = format!("duplicating({})", inner.name());
        DuplicatingProbe {
            inner,
            name,
            rng: StdRng::seed_from_u64(seed),
            dup_prob: dup_prob.clamp(0.0, 1.0),
        }
    }
}

impl<P: Probe> Probe for DuplicatingProbe<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, from_ms: u64, to_ms: u64) -> Result<Vec<FlowRecord>, ProbeError> {
        let records = self.inner.poll(from_ms, to_ms)?;
        let mut out = Vec::with_capacity(records.len());
        for r in records {
            out.push(r);
            if self.rng.gen_bool(self.dup_prob) {
                out.push(r);
            }
        }
        Ok(out)
    }

    fn horizon_ms(&self) -> Option<u64> {
        self.inner.horizon_ms()
    }
}

/// A probe whose clock runs fast or slow by a fixed offset. When the
/// aggregator asks for `[from, to)` the probe serves the records whose
/// *true* time falls `skew_ms` earlier/later, stamped with its skewed
/// clock — so the records still land inside the requested window, but
/// every timestamp is wrong by the skew.
pub struct ClockSkewProbe<P> {
    inner: P,
    name: String,
    skew_ms: i64,
}

impl<P: Probe> ClockSkewProbe<P> {
    /// Wraps `inner` with a clock offset of `skew_ms` (positive: the
    /// probe's clock runs ahead of the aggregator's).
    pub fn new(inner: P, skew_ms: i64) -> Self {
        let name = format!("clock-skew({})", inner.name());
        ClockSkewProbe {
            inner,
            name,
            skew_ms,
        }
    }

    fn shift(&self, t: u64) -> u64 {
        t.saturating_add_signed(self.skew_ms)
    }

    fn unshift(&self, t: u64) -> u64 {
        t.saturating_add_signed(-self.skew_ms)
    }
}

impl<P: Probe> Probe for ClockSkewProbe<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, from_ms: u64, to_ms: u64) -> Result<Vec<FlowRecord>, ProbeError> {
        let mut records = self
            .inner
            .poll(self.unshift(from_ms), self.unshift(to_ms))?;
        for r in &mut records {
            r.start_ms = self.shift(r.start_ms);
            r.end_ms = self.shift(r.end_ms);
        }
        Ok(records)
    }

    fn horizon_ms(&self) -> Option<u64> {
        self.inner.horizon_ms().map(|h| self.shift(h))
    }
}

/// Per-frame fault probabilities and schedules for a [`WireFaultProxy`].
///
/// Faults that lose or repeat data (`drop`, `dup`, `reorder`,
/// `truncate`) apply only to *sequenced* frames (`Batch`/`WindowEnd`) —
/// exactly the frames the transport's go-back-N discipline must
/// recover; mangling the handshake would only test reconnect dialing,
/// which `truncate` already forces. Timing faults (`delay`, `split`)
/// apply to every frame. All decisions come from one seeded RNG per
/// connection, so a given `(seed, schedule)` replays bit for bit.
#[derive(Clone, Debug)]
pub struct WireFaultPlan {
    /// Seed for the per-connection RNGs (connection `i` derives its own
    /// stream, so reconnects see fresh but deterministic schedules).
    pub seed: u64,
    /// Probability a sequenced frame is silently dropped (the sender's
    /// ack-silence retransmission must recover it).
    pub drop_prob: f64,
    /// Probability a sequenced frame is delivered twice (the listener's
    /// sequence cursor must dedup it).
    pub dup_prob: f64,
    /// Probability a sequenced frame is held and delivered *after* the
    /// next frame (the listener re-acks the gap; go-back-N refills it).
    pub reorder_prob: f64,
    /// Probability a frame is delayed by [`WireFaultPlan::delay`].
    pub delay_prob: f64,
    /// How long a delayed frame is held.
    pub delay: Duration,
    /// Probability a frame's bytes are written in two chunks with a
    /// pause between (stream reassembly across partial reads).
    pub split_prob: f64,
    /// Probability a sequenced frame is cut mid-bytes and the
    /// connection closed (the sender must reconnect and resume).
    pub truncate_prob: f64,
    /// After this many sequenced frames have been *forwarded* (summed
    /// over all connections), eat every subsequent frame: the
    /// permanent-loss schedule. `None` disables the black hole.
    pub blackhole_after: Option<u64>,
}

impl WireFaultPlan {
    /// A transparent proxy: no faults at all.
    pub fn clean(seed: u64) -> WireFaultPlan {
        WireFaultPlan {
            seed,
            drop_prob: 0.0,
            dup_prob: 0.0,
            reorder_prob: 0.0,
            delay_prob: 0.0,
            delay: Duration::from_millis(5),
            split_prob: 0.0,
            truncate_prob: 0.0,
            blackhole_after: None,
        }
    }

    /// The chaos-suite schedule: every fault class enabled at rates
    /// high enough to fire in a short run but low enough that the
    /// sender's bounded retransmission/reconnect budgets hold.
    pub fn chaos(seed: u64) -> WireFaultPlan {
        WireFaultPlan {
            seed,
            drop_prob: 0.10,
            dup_prob: 0.10,
            reorder_prob: 0.08,
            delay_prob: 0.10,
            delay: Duration::from_millis(2),
            split_prob: 0.15,
            truncate_prob: 0.04,
            blackhole_after: None,
        }
    }

    /// A schedule that delivers `n` sequenced frames and then goes
    /// permanently dark — the unrecoverable-loss scenario.
    pub fn blackhole(seed: u64, n: u64) -> WireFaultPlan {
        WireFaultPlan {
            blackhole_after: Some(n),
            ..WireFaultPlan::clean(seed)
        }
    }
}

/// What the proxy did to the frames that passed through it.
#[derive(Debug, Default)]
pub struct WireFaultCounters {
    /// Frames read off probe connections.
    pub frames: AtomicU64,
    /// Sequenced frames silently discarded.
    pub dropped: AtomicU64,
    /// Sequenced frames delivered twice.
    pub duplicated: AtomicU64,
    /// Sequenced frames delivered out of order.
    pub reordered: AtomicU64,
    /// Frames delayed before delivery.
    pub delayed: AtomicU64,
    /// Frames written in two chunks.
    pub split: AtomicU64,
    /// Sequenced frames cut mid-bytes (connection closed).
    pub truncated: AtomicU64,
    /// Frames eaten by the permanent black hole.
    pub blackholed: AtomicU64,
}

/// A deterministic fault-injecting TCP proxy for the probe→aggregator
/// wire protocol.
///
/// Sits between a [`ProbeSender`](aggregator::ProbeSender) and a
/// [`WireListener`](aggregator::WireListener), parses the frame stream,
/// and re-emits it with seeded drops, duplicates, reorders, delays,
/// split writes, and truncate-then-close cuts — the wire-level faults
/// the transport's sessions must absorb without losing or
/// double-counting a record. The listener→probe direction (acks) is
/// pumped verbatim.
pub struct WireFaultProxy {
    local: SocketAddr,
    counters: Arc<WireFaultCounters>,
    shutdown: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
}

impl WireFaultProxy {
    /// Starts a proxy on an ephemeral local port, forwarding to
    /// `upstream` under `plan`.
    pub fn spawn(
        upstream: impl ToSocketAddrs,
        plan: WireFaultPlan,
    ) -> std::io::Result<WireFaultProxy> {
        let upstream = upstream
            .to_socket_addrs()?
            .next()
            .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidInput, "no address"))?;
        let listener = TcpListener::bind("127.0.0.1:0")?;
        let local = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let counters = Arc::new(WireFaultCounters::default());
        let shutdown = Arc::new(AtomicBool::new(false));
        let forwarded = Arc::new(AtomicU64::new(0));

        let accept_counters = Arc::clone(&counters);
        let accept_shutdown = Arc::clone(&shutdown);
        let accept_thread = std::thread::spawn(move || {
            let mut conn_idx: u64 = 0;
            while !accept_shutdown.load(Ordering::Relaxed) {
                match listener.accept() {
                    Ok((client, _)) => {
                        conn_idx += 1;
                        // Each connection gets its own deterministic
                        // stream: reconnects replay a *different* but
                        // reproducible schedule.
                        let rng = StdRng::seed_from_u64(
                            plan.seed ^ conn_idx.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                        );
                        let plan = plan.clone();
                        let counters = Arc::clone(&accept_counters);
                        let forwarded = Arc::clone(&forwarded);
                        std::thread::spawn(move || {
                            let _ = forward_connection(
                                client, upstream, plan, rng, &counters, &forwarded,
                            );
                        });
                    }
                    Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
        });

        Ok(WireFaultProxy {
            local,
            counters,
            shutdown,
            accept_thread: Some(accept_thread),
        })
    }

    /// The address probes should dial instead of the listener's.
    pub fn local_addr(&self) -> SocketAddr {
        self.local
    }

    /// The fault tallies so far.
    pub fn counters(&self) -> &WireFaultCounters {
        &self.counters
    }

    /// Stops accepting new connections (existing ones drain on their
    /// own when either side closes).
    pub fn shutdown(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for WireFaultProxy {
    fn drop(&mut self) {
        self.shutdown();
    }
}

/// Proxies one probe connection: client→upstream through the fault
/// schedule, upstream→client (the ack stream) verbatim.
fn forward_connection(
    mut client: TcpStream,
    upstream_addr: SocketAddr,
    plan: WireFaultPlan,
    mut rng: StdRng,
    counters: &WireFaultCounters,
    forwarded: &AtomicU64,
) -> std::io::Result<()> {
    let mut upstream = TcpStream::connect(upstream_addr)?;
    client.set_nodelay(true)?;
    upstream.set_nodelay(true)?;

    // Ack pump: bytes from the listener back to the probe, untouched.
    // Ends when either socket closes; errors just end the pump.
    let mut ack_src = upstream.try_clone()?;
    let mut ack_dst = client.try_clone()?;
    let pump = std::thread::spawn(move || {
        let mut buf = [0u8; 4096];
        while let Ok(n) = ack_src.read(&mut buf) {
            if n == 0 || ack_dst.write_all(&buf[..n]).is_err() {
                break;
            }
        }
    });

    // A reordered frame waits here until the next frame has been sent.
    let mut held: Option<Vec<u8>> = None;
    let result = loop {
        let frame = match frame::read_frame(&mut client, u32::MAX) {
            Ok(f) => f,
            Err(_) => break Ok(()), // client closed or spoke garbage: done
        };
        counters.frames.fetch_add(1, Ordering::Relaxed);
        let sequenced = matches!(frame.kind, FrameType::Batch | FrameType::WindowEnd);
        let bytes = frame.encode();

        if let Some(limit) = plan.blackhole_after {
            let seen = if sequenced {
                forwarded.fetch_add(1, Ordering::Relaxed)
            } else {
                forwarded.load(Ordering::Relaxed)
            };
            if seen >= limit {
                counters.blackholed.fetch_add(1, Ordering::Relaxed);
                continue; // eat it, keep reading: permanent loss
            }
        }

        if sequenced && rng.gen_bool(plan.drop_prob) {
            counters.dropped.fetch_add(1, Ordering::Relaxed);
            continue;
        }
        if sequenced && held.is_none() && rng.gen_bool(plan.reorder_prob) {
            counters.reordered.fetch_add(1, Ordering::Relaxed);
            held = Some(bytes);
            continue; // delivered after the next frame
        }
        if sequenced && rng.gen_bool(plan.truncate_prob) && bytes.len() > 1 {
            counters.truncated.fetch_add(1, Ordering::Relaxed);
            let cut = rng.gen_range(1..bytes.len());
            let _ = upstream.write_all(&bytes[..cut]);
            break Ok(()); // close both directions mid-frame
        }
        if rng.gen_bool(plan.delay_prob) {
            counters.delayed.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(plan.delay);
        }
        if rng.gen_bool(plan.split_prob) && bytes.len() > 1 {
            counters.split.fetch_add(1, Ordering::Relaxed);
            let cut = rng.gen_range(1..bytes.len());
            if upstream.write_all(&bytes[..cut]).is_err() {
                break Ok(());
            }
            std::thread::sleep(Duration::from_millis(1));
            if upstream.write_all(&bytes[cut..]).is_err() {
                break Ok(());
            }
        } else if upstream.write_all(&bytes).is_err() {
            break Ok(());
        }
        if sequenced && rng.gen_bool(plan.dup_prob) {
            counters.duplicated.fetch_add(1, Ordering::Relaxed);
            if upstream.write_all(&bytes).is_err() {
                break Ok(());
            }
        }
        if let Some(h) = held.take() {
            if upstream.write_all(&h).is_err() {
                break Ok(());
            }
        }
    };
    // Release a frame still held at stream end, then close both sides
    // so the ack pump unblocks.
    if let Some(h) = held.take() {
        let _ = upstream.write_all(&h);
    }
    let _ = upstream.shutdown(std::net::Shutdown::Both);
    let _ = client.shutdown(std::net::Shutdown::Both);
    let _ = pump.join();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggregator::ReplayProbe;
    use flow::HostAddr;

    fn trace(n: u64) -> Vec<FlowRecord> {
        (0..n)
            .map(|i| {
                let mut f = FlowRecord::pair(HostAddr::v4(1), HostAddr::v4(2));
                f.start_ms = i * 10;
                f.end_ms = i * 10 + 5;
                f
            })
            .collect()
    }

    #[test]
    fn flaky_probe_is_deterministic_per_seed() {
        let run = |seed| {
            let mut p = FlakyProbe::new(ReplayProbe::new("r", trace(10)), 0.5, seed);
            (0..20)
                .map(|_| p.poll(0, 1000).is_ok())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
        // With p=0.5 over 20 polls, both outcomes must appear.
        let outcomes = run(7);
        assert!(outcomes.iter().any(|ok| *ok));
        assert!(outcomes.iter().any(|ok| !ok));
    }

    #[test]
    fn flaky_probe_never_fails_at_zero_prob() {
        let mut p = FlakyProbe::new(ReplayProbe::new("r", trace(4)), 0.0, 1);
        for _ in 0..10 {
            assert_eq!(p.poll(0, 1000).unwrap().len(), 4);
        }
        assert_eq!(p.attempts(), 10);
    }

    #[test]
    fn flaky_probe_turns_fatal_on_schedule() {
        let mut p = FlakyProbe::new(ReplayProbe::new("r", trace(4)), 0.0, 1).fatal_after(2);
        assert!(p.poll(0, 1000).is_ok());
        assert!(p.poll(0, 1000).is_ok());
        let err = p.poll(0, 1000).unwrap_err();
        assert!(!err.is_transient());
    }

    #[test]
    fn truncating_probe_drops_but_succeeds() {
        let mut p = TruncatingProbe::new(ReplayProbe::new("r", trace(200)), 0.5, 3);
        let got = p.poll(0, 10_000).unwrap();
        assert!(got.len() < 200, "should drop something");
        assert!(!got.is_empty(), "should keep something");
    }

    #[test]
    fn duplicating_probe_only_adds_copies() {
        let mut p = DuplicatingProbe::new(ReplayProbe::new("r", trace(100)), 0.5, 3);
        let got = p.poll(0, 10_000).unwrap();
        assert!(got.len() > 100);
        // Every record is one of the originals.
        assert!(got.iter().all(|r| r.start_ms % 10 == 0));
    }

    #[test]
    fn clean_wire_proxy_is_transparent() {
        let cfg = aggregator::TransportConfig::fast();
        let listener =
            aggregator::WireListener::bind("127.0.0.1:0", cfg.clone(), None, None).unwrap();
        let mut probe = listener.probe("p");
        let proxy = WireFaultProxy::spawn(listener.local_addr(), WireFaultPlan::clean(1)).unwrap();

        let records = trace(20);
        let addr = proxy.local_addr();
        let sent = records.clone();
        let sender = std::thread::spawn(move || {
            aggregator::transport::stream_records(addr, "p", &sent, 0, 1000, cfg).unwrap()
        });
        assert_eq!(probe.poll(0, 1000).unwrap(), records);
        let stats = sender.join().unwrap();
        assert_eq!(stats.retransmits, 0, "a clean proxy forces no recovery");
        assert!(proxy.counters().frames.load(Ordering::Relaxed) > 0);
        assert_eq!(proxy.counters().dropped.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn clock_skew_shifts_timestamps_not_content() {
        let mut p = ClockSkewProbe::new(ReplayProbe::new("r", trace(10)), 1000);
        // The aggregator's window [1000, 2000) maps to true [0, 1000).
        let got = p.poll(1000, 2000).unwrap();
        assert_eq!(got.len(), 10);
        assert!(got.iter().all(|r| r.start_ms >= 1000));
        assert_eq!(p.horizon_ms(), Some(91 + 1000));
        let mut back = ClockSkewProbe::new(ReplayProbe::new("r", trace(10)), -50);
        let got = back.poll(0, 1000).unwrap();
        // Records whose true time shifted below 0 saturate at 0.
        assert!(got.iter().all(|r| r.start_ms < 1000));
    }
}
