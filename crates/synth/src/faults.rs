//! Deterministic fault injection for the ingestion pipeline.
//!
//! Real probes fail in characteristic ways: they time out, silently
//! drop the tail of a window, double-report flows after an export
//! retry, or drift off the aggregator's clock. These wrappers inject
//! exactly those faults around any inner [`Probe`], driven by a seeded
//! RNG so every chaos run is reproducible bit for bit.
//!
//! They are used by the aggregator's chaos integration tests to assert
//! that supervised ingestion (retry, quarantine, degraded-window
//! classification) keeps the correlation chain intact under fire.

use aggregator::{Probe, ProbeError};
use flow::FlowRecord;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A probe that fails polls at a seeded, configurable rate.
///
/// Each poll *attempt* independently fails with probability
/// `fail_prob` (so the supervisor's retries genuinely re-roll). All
/// failures are [`ProbeError::Transient`]; use
/// [`FlakyProbe::fatal_after`] to additionally kill the probe for good
/// after a fixed number of poll attempts.
pub struct FlakyProbe<P> {
    inner: P,
    name: String,
    rng: StdRng,
    fail_prob: f64,
    fatal_after: Option<u64>,
    attempts: u64,
}

impl<P: Probe> FlakyProbe<P> {
    /// Wraps `inner`, failing each poll attempt with `fail_prob`.
    pub fn new(inner: P, fail_prob: f64, seed: u64) -> Self {
        let name = format!("flaky({})", inner.name());
        FlakyProbe {
            inner,
            name,
            rng: StdRng::seed_from_u64(seed),
            fail_prob: fail_prob.clamp(0.0, 1.0),
            fatal_after: None,
            attempts: 0,
        }
    }

    /// After `n` poll attempts, every further poll fails fatally —
    /// simulating a device that flaps for a while and then dies.
    pub fn fatal_after(mut self, n: u64) -> Self {
        self.fatal_after = Some(n);
        self
    }

    /// Poll attempts made so far (successful or not).
    pub fn attempts(&self) -> u64 {
        self.attempts
    }
}

impl<P: Probe> Probe for FlakyProbe<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, from_ms: u64, to_ms: u64) -> Result<Vec<FlowRecord>, ProbeError> {
        self.attempts += 1;
        if let Some(n) = self.fatal_after {
            if self.attempts > n {
                return Err(ProbeError::Fatal("injected: device died".to_string()));
            }
        }
        if self.rng.gen_bool(self.fail_prob) {
            return Err(ProbeError::Transient("injected: poll timeout".to_string()));
        }
        self.inner.poll(from_ms, to_ms)
    }

    fn horizon_ms(&self) -> Option<u64> {
        self.inner.horizon_ms()
    }
}

/// A probe that silently drops a seeded fraction of each window's
/// records — the *undetectable* failure mode (the poll still succeeds),
/// which is why degraded-window accounting tracks record counts too.
pub struct TruncatingProbe<P> {
    inner: P,
    name: String,
    rng: StdRng,
    drop_prob: f64,
}

impl<P: Probe> TruncatingProbe<P> {
    /// Wraps `inner`, dropping each delivered record with `drop_prob`.
    pub fn new(inner: P, drop_prob: f64, seed: u64) -> Self {
        let name = format!("truncating({})", inner.name());
        TruncatingProbe {
            inner,
            name,
            rng: StdRng::seed_from_u64(seed),
            drop_prob: drop_prob.clamp(0.0, 1.0),
        }
    }
}

impl<P: Probe> Probe for TruncatingProbe<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, from_ms: u64, to_ms: u64) -> Result<Vec<FlowRecord>, ProbeError> {
        let records = self.inner.poll(from_ms, to_ms)?;
        let rng = &mut self.rng;
        let p = self.drop_prob;
        Ok(records.into_iter().filter(|_| !rng.gen_bool(p)).collect())
    }

    fn horizon_ms(&self) -> Option<u64> {
        self.inner.horizon_ms()
    }
}

/// A probe that re-delivers records — an export path that retries after
/// an ack loss double-reports flows. Connection-set construction must
/// be tolerant (pair stats inflate, the *set structure* must not).
pub struct DuplicatingProbe<P> {
    inner: P,
    name: String,
    rng: StdRng,
    dup_prob: f64,
}

impl<P: Probe> DuplicatingProbe<P> {
    /// Wraps `inner`, duplicating each record with `dup_prob`.
    pub fn new(inner: P, dup_prob: f64, seed: u64) -> Self {
        let name = format!("duplicating({})", inner.name());
        DuplicatingProbe {
            inner,
            name,
            rng: StdRng::seed_from_u64(seed),
            dup_prob: dup_prob.clamp(0.0, 1.0),
        }
    }
}

impl<P: Probe> Probe for DuplicatingProbe<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, from_ms: u64, to_ms: u64) -> Result<Vec<FlowRecord>, ProbeError> {
        let records = self.inner.poll(from_ms, to_ms)?;
        let mut out = Vec::with_capacity(records.len());
        for r in records {
            out.push(r);
            if self.rng.gen_bool(self.dup_prob) {
                out.push(r);
            }
        }
        Ok(out)
    }

    fn horizon_ms(&self) -> Option<u64> {
        self.inner.horizon_ms()
    }
}

/// A probe whose clock runs fast or slow by a fixed offset. When the
/// aggregator asks for `[from, to)` the probe serves the records whose
/// *true* time falls `skew_ms` earlier/later, stamped with its skewed
/// clock — so the records still land inside the requested window, but
/// every timestamp is wrong by the skew.
pub struct ClockSkewProbe<P> {
    inner: P,
    name: String,
    skew_ms: i64,
}

impl<P: Probe> ClockSkewProbe<P> {
    /// Wraps `inner` with a clock offset of `skew_ms` (positive: the
    /// probe's clock runs ahead of the aggregator's).
    pub fn new(inner: P, skew_ms: i64) -> Self {
        let name = format!("clock-skew({})", inner.name());
        ClockSkewProbe {
            inner,
            name,
            skew_ms,
        }
    }

    fn shift(&self, t: u64) -> u64 {
        t.saturating_add_signed(self.skew_ms)
    }

    fn unshift(&self, t: u64) -> u64 {
        t.saturating_add_signed(-self.skew_ms)
    }
}

impl<P: Probe> Probe for ClockSkewProbe<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn poll(&mut self, from_ms: u64, to_ms: u64) -> Result<Vec<FlowRecord>, ProbeError> {
        let mut records = self
            .inner
            .poll(self.unshift(from_ms), self.unshift(to_ms))?;
        for r in &mut records {
            r.start_ms = self.shift(r.start_ms);
            r.end_ms = self.shift(r.end_ms);
        }
        Ok(records)
    }

    fn horizon_ms(&self) -> Option<u64> {
        self.inner.horizon_ms().map(|h| self.shift(h))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use aggregator::ReplayProbe;
    use flow::HostAddr;

    fn trace(n: u64) -> Vec<FlowRecord> {
        (0..n)
            .map(|i| {
                let mut f = FlowRecord::pair(HostAddr::v4(1), HostAddr::v4(2));
                f.start_ms = i * 10;
                f.end_ms = i * 10 + 5;
                f
            })
            .collect()
    }

    #[test]
    fn flaky_probe_is_deterministic_per_seed() {
        let run = |seed| {
            let mut p = FlakyProbe::new(ReplayProbe::new("r", trace(10)), 0.5, seed);
            (0..20)
                .map(|_| p.poll(0, 1000).is_ok())
                .collect::<Vec<bool>>()
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7), run(8), "different seeds should diverge");
        // With p=0.5 over 20 polls, both outcomes must appear.
        let outcomes = run(7);
        assert!(outcomes.iter().any(|ok| *ok));
        assert!(outcomes.iter().any(|ok| !ok));
    }

    #[test]
    fn flaky_probe_never_fails_at_zero_prob() {
        let mut p = FlakyProbe::new(ReplayProbe::new("r", trace(4)), 0.0, 1);
        for _ in 0..10 {
            assert_eq!(p.poll(0, 1000).unwrap().len(), 4);
        }
        assert_eq!(p.attempts(), 10);
    }

    #[test]
    fn flaky_probe_turns_fatal_on_schedule() {
        let mut p = FlakyProbe::new(ReplayProbe::new("r", trace(4)), 0.0, 1).fatal_after(2);
        assert!(p.poll(0, 1000).is_ok());
        assert!(p.poll(0, 1000).is_ok());
        let err = p.poll(0, 1000).unwrap_err();
        assert!(!err.is_transient());
    }

    #[test]
    fn truncating_probe_drops_but_succeeds() {
        let mut p = TruncatingProbe::new(ReplayProbe::new("r", trace(200)), 0.5, 3);
        let got = p.poll(0, 10_000).unwrap();
        assert!(got.len() < 200, "should drop something");
        assert!(!got.is_empty(), "should keep something");
    }

    #[test]
    fn duplicating_probe_only_adds_copies() {
        let mut p = DuplicatingProbe::new(ReplayProbe::new("r", trace(100)), 0.5, 3);
        let got = p.poll(0, 10_000).unwrap();
        assert!(got.len() > 100);
        // Every record is one of the originals.
        assert!(got.iter().all(|r| r.start_ms % 10 == 0));
    }

    #[test]
    fn clock_skew_shifts_timestamps_not_content() {
        let mut p = ClockSkewProbe::new(ReplayProbe::new("r", trace(10)), 1000);
        // The aggregator's window [1000, 2000) maps to true [0, 1000).
        let got = p.poll(1000, 2000).unwrap();
        assert_eq!(got.len(), 10);
        assert!(got.iter().all(|r| r.start_ms >= 1000));
        assert_eq!(p.horizon_ms(), Some(91 + 1000));
        let mut back = ClockSkewProbe::new(ReplayProbe::new("r", trace(10)), -50);
        let got = back.poll(0, 1000).unwrap();
        // Records whose true time shifted below 0 saturate at 0.
        assert!(got.iter().all(|r| r.start_ms < 1000));
    }
}
