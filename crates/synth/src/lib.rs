//! Synthetic enterprise networks with ground-truth roles.
//!
//! The paper evaluates on proprietary traces from two corporate networks
//! (*Mazu*, 110 hosts; *BigCompany*, 3638 hosts) plus a 49 041-host
//! *HugeCompany* for run-time scaling. Those traces are not available, so
//! this crate generates networks with the same *structure*: hosts are
//! assigned logical roles, and connection habits are drawn from per-role
//! rules (which servers a role talks to, with what participation and
//! fan-out). Because the generator knows every host's true role, it also
//! emits the ideal partitioning `P*` the paper obtained from network
//! administrators, enabling Rand-statistic validation (Section 6.1).
//!
//! * [`model`] — the role/rule network model and the seeded generator.
//! * [`scenarios`] — the paper's networks: [`scenarios::figure1`],
//!   [`scenarios::mazu`], [`scenarios::big_company`],
//!   [`scenarios::huge_company`].
//! * [`churn`] — the connection-pattern changes of Section 5/Figure 5:
//!   role swaps, host replacement, arrivals, removals, server splits.
//! * [`trace`] — expansion of a generated network into flow records for
//!   exercising the ingestion pipeline end to end.
//! * [`faults`] — seeded fault-injection probe wrappers (flaky,
//!   truncating, duplicating, clock-skewed) for chaos-testing the
//!   aggregator's supervised ingestion, plus [`faults::WireFaultProxy`],
//!   a deterministic TCP proxy that injects wire-level faults (drop,
//!   duplicate, reorder, delay, split, truncate, black hole) into the
//!   probe→aggregator frame protocol.

pub mod churn;
pub mod faults;
pub mod model;
pub mod scenarios;
pub mod trace;

pub use faults::{
    ClockSkewProbe, DuplicatingProbe, FlakyProbe, TruncatingProbe, WireFaultCounters,
    WireFaultPlan, WireFaultProxy,
};
pub use model::{ConnRule, Fanout, GroundTruth, NetworkModel, RoleSpec, SyntheticNetwork};
