//! Role-based network model and seeded generator.

use flow::{ConnectionSets, HostAddr};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Index of a role within a [`NetworkModel`].
pub type RoleId = usize;

/// One logical role: a named population of hosts.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct RoleSpec {
    /// Role name (e.g. `"eng"`, `"unix_mail"`). Names are the ground-truth
    /// labels used to build the ideal partitioning.
    pub name: String,
    /// Number of hosts playing this role.
    pub count: usize,
    /// Whether this role is server-like; used only for reporting.
    pub is_server: bool,
}

impl RoleSpec {
    /// Builds a client-side role.
    pub fn clients(name: &str, count: usize) -> Self {
        RoleSpec {
            name: name.to_string(),
            count,
            is_server: false,
        }
    }

    /// Builds a server-side role.
    pub fn servers(name: &str, count: usize) -> Self {
        RoleSpec {
            name: name.to_string(),
            count,
            is_server: true,
        }
    }
}

/// How many distinct target hosts each participating source host picks.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub enum Fanout {
    /// Connect to every host of the target role.
    All,
    /// Connect to exactly `n` distinct hosts (capped at the role size).
    Exactly(usize),
    /// Connect to a uniformly drawn number of hosts in `[lo, hi]`.
    Range(usize, usize),
    /// Connect to each target host independently with this probability.
    Bernoulli(f64),
}

/// One connection-habit rule: members of `from` open connections to
/// members of `to`.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct ConnRule {
    /// Source role.
    pub from: RoleId,
    /// Target role (may equal `from` for intra-role chatter).
    pub to: RoleId,
    /// Fraction of `from` hosts that follow this rule at all.
    pub participation: f64,
    /// Fan-out of each participating host.
    pub fanout: Fanout,
}

impl ConnRule {
    /// Builds a rule with full participation.
    pub fn new(from: RoleId, to: RoleId, fanout: Fanout) -> Self {
        ConnRule {
            from,
            to,
            participation: 1.0,
            fanout,
        }
    }

    /// Sets the participation fraction.
    pub fn participation(mut self, p: f64) -> Self {
        self.participation = p;
        self
    }
}

/// A complete generative network model.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct NetworkModel {
    /// The roles, indexed by [`RoleId`].
    pub roles: Vec<RoleSpec>,
    /// The connection-habit rules.
    pub rules: Vec<ConnRule>,
    /// First address to allocate; hosts get consecutive addresses.
    pub base_addr: HostAddr,
}

/// The generator's ground truth: every host's true role.
#[derive(Clone, Debug, Default, Serialize, Deserialize)]
pub struct GroundTruth {
    role_of: BTreeMap<HostAddr, String>,
}

impl GroundTruth {
    /// The true role of `h`, if known.
    pub fn role_of(&self, h: HostAddr) -> Option<&str> {
        self.role_of.get(&h).map(String::as_str)
    }

    /// Records `h` as playing `role`.
    pub fn assign(&mut self, h: HostAddr, role: &str) {
        self.role_of.insert(h, role.to_string());
    }

    /// Removes a host from the ground truth; returns its former role.
    pub fn remove(&mut self, h: HostAddr) -> Option<String> {
        self.role_of.remove(&h)
    }

    /// Number of hosts with known roles.
    pub fn len(&self) -> usize {
        self.role_of.len()
    }

    /// Returns `true` when no roles are recorded.
    pub fn is_empty(&self) -> bool {
        self.role_of.is_empty()
    }

    /// The ideal partitioning `P*`: hosts grouped by true role, ordered
    /// by role name.
    pub fn partition(&self) -> Vec<Vec<HostAddr>> {
        let mut by_role: BTreeMap<&str, Vec<HostAddr>> = BTreeMap::new();
        for (&h, role) in &self.role_of {
            by_role.entry(role).or_default().push(h);
        }
        by_role.into_values().collect()
    }

    /// Iterates over `(host, role)` pairs in address order.
    pub fn iter(&self) -> impl Iterator<Item = (HostAddr, &str)> + '_ {
        self.role_of.iter().map(|(&h, r)| (h, r.as_str()))
    }
}

/// A generated network: connection sets plus ground truth.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct SyntheticNetwork {
    /// The observable input to the grouping algorithm.
    pub connsets: ConnectionSets,
    /// The hidden ideal partitioning.
    pub truth: GroundTruth,
    /// Host addresses by role name, in allocation order.
    pub hosts_by_role: BTreeMap<String, Vec<HostAddr>>,
}

impl SyntheticNetwork {
    /// Total number of hosts.
    pub fn host_count(&self) -> usize {
        self.connsets.host_count()
    }

    /// All hosts of one role (empty slice if the role is unknown).
    pub fn role_hosts(&self, role: &str) -> &[HostAddr] {
        self.hosts_by_role
            .get(role)
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    /// The first host of a role — convenient for singleton server roles.
    ///
    /// # Panics
    ///
    /// Panics if the role does not exist or is empty.
    pub fn host(&self, role: &str) -> HostAddr {
        self.role_hosts(role)[0]
    }
}

impl NetworkModel {
    /// Creates an empty model allocating addresses from `10.0.0.1`.
    pub fn new() -> Self {
        NetworkModel {
            roles: Vec::new(),
            rules: Vec::new(),
            base_addr: HostAddr::from_octets(10, 0, 0, 1),
        }
    }

    /// Adds a role and returns its id.
    pub fn role(&mut self, spec: RoleSpec) -> RoleId {
        self.roles.push(spec);
        self.roles.len() - 1
    }

    /// Adds a rule.
    pub fn rule(&mut self, rule: ConnRule) -> &mut Self {
        assert!(rule.from < self.roles.len(), "rule.from out of range");
        assert!(rule.to < self.roles.len(), "rule.to out of range");
        self.rules.push(rule);
        self
    }

    /// Total host count across roles.
    pub fn host_count(&self) -> usize {
        self.roles.iter().map(|r| r.count).sum()
    }

    /// Generates a network deterministically from `seed`.
    ///
    /// Every host of every role is materialized (so even isolated hosts
    /// are part of the population), then each rule is expanded with the
    /// seeded RNG.
    pub fn generate(&self, seed: u64) -> SyntheticNetwork {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut truth = GroundTruth::default();
        let mut hosts_by_role: BTreeMap<String, Vec<HostAddr>> = BTreeMap::new();
        let mut role_hosts: Vec<Vec<HostAddr>> = Vec::with_capacity(self.roles.len());

        let mut all_hosts: Vec<HostAddr> = Vec::with_capacity(self.host_count());
        let mut next = self.base_addr.as_u32();
        for spec in &self.roles {
            let mut hosts = Vec::with_capacity(spec.count);
            for _ in 0..spec.count {
                let h = HostAddr::v4(next);
                next += 1;
                truth.assign(h, &spec.name);
                hosts.push(h);
            }
            all_hosts.extend(hosts.iter().copied());
            hosts_by_role
                .entry(spec.name.clone())
                .or_default()
                .extend(hosts.iter().copied());
            role_hosts.push(hosts);
        }

        // Collect every pair occurrence, then compact once: at tens of
        // thousands of hosts the rules emit hundreds of thousands of
        // pairs, and the bulk constructor turns them into the columnar
        // layout in one sort instead of per-pair sorted inserts.
        let mut pair_occurrences: Vec<(HostAddr, HostAddr)> = Vec::new();
        for rule in &self.rules {
            let sources = &role_hosts[rule.from];
            let targets = &role_hosts[rule.to];
            for &src in sources {
                if rule.participation < 1.0 && rng.gen::<f64>() >= rule.participation {
                    continue;
                }
                match rule.fanout {
                    Fanout::All => {
                        for &dst in targets {
                            if dst != src {
                                pair_occurrences.push((src, dst));
                            }
                        }
                    }
                    Fanout::Bernoulli(p) => {
                        for &dst in targets {
                            if dst != src && rng.gen::<f64>() < p {
                                pair_occurrences.push((src, dst));
                            }
                        }
                    }
                    Fanout::Exactly(n) => {
                        for dst in sample_excluding(&mut rng, targets, src, n) {
                            pair_occurrences.push((src, dst));
                        }
                    }
                    Fanout::Range(lo, hi) => {
                        let n = if hi > lo { rng.gen_range(lo..=hi) } else { lo };
                        for dst in sample_excluding(&mut rng, targets, src, n) {
                            pair_occurrences.push((src, dst));
                        }
                    }
                }
            }
        }
        let connsets = ConnectionSets::from_pairs(all_hosts, pair_occurrences);

        SyntheticNetwork {
            connsets,
            truth,
            hosts_by_role,
        }
    }
}

/// Samples up to `n` distinct targets, never returning `exclude`.
fn sample_excluding(
    rng: &mut StdRng,
    targets: &[HostAddr],
    exclude: HostAddr,
    n: usize,
) -> Vec<HostAddr> {
    let pool: Vec<HostAddr> = targets.iter().copied().filter(|&t| t != exclude).collect();
    let n = n.min(pool.len());
    // Partial Fisher–Yates over an index vector.
    let mut idx: Vec<usize> = (0..pool.len()).collect();
    for i in 0..n {
        let j = rng.gen_range(i..idx.len());
        idx.swap(i, j);
    }
    idx[..n].iter().map(|&i| pool[i]).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_role_model() -> NetworkModel {
        let mut m = NetworkModel::new();
        let clients = m.role(RoleSpec::clients("client", 10));
        let servers = m.role(RoleSpec::servers("server", 2));
        m.rule(ConnRule::new(clients, servers, Fanout::All));
        m
    }

    #[test]
    fn generation_is_deterministic() {
        let m = two_role_model();
        let a = m.generate(7);
        let b = m.generate(7);
        assert_eq!(a.connsets, b.connsets);
    }

    #[test]
    fn different_seeds_differ_for_random_rules() {
        let mut m = NetworkModel::new();
        let c = m.role(RoleSpec::clients("c", 30));
        let s = m.role(RoleSpec::servers("s", 10));
        m.rule(ConnRule::new(c, s, Fanout::Exactly(3)));
        let a = m.generate(1);
        let b = m.generate(2);
        assert_ne!(a.connsets, b.connsets);
    }

    #[test]
    fn all_fanout_connects_everyone() {
        let net = two_role_model().generate(0);
        let servers = net.role_hosts("server");
        for &c in net.role_hosts("client") {
            assert_eq!(net.connsets.degree(c), Some(2));
            for &s in servers {
                assert!(net.connsets.connected(c, s));
            }
        }
        assert_eq!(net.host_count(), 12);
    }

    #[test]
    fn exactly_fanout_capped_at_pool() {
        let mut m = NetworkModel::new();
        let c = m.role(RoleSpec::clients("c", 3));
        let s = m.role(RoleSpec::servers("s", 2));
        m.rule(ConnRule::new(c, s, Fanout::Exactly(10)));
        let net = m.generate(0);
        for &h in net.role_hosts("c") {
            assert_eq!(net.connsets.degree(h), Some(2));
        }
    }

    #[test]
    fn participation_zero_yields_isolated_hosts() {
        let mut m = NetworkModel::new();
        let c = m.role(RoleSpec::clients("c", 5));
        let s = m.role(RoleSpec::servers("s", 1));
        m.rule(ConnRule::new(c, s, Fanout::All).participation(0.0));
        let net = m.generate(0);
        assert_eq!(net.host_count(), 6);
        assert_eq!(net.connsets.connection_count(), 0);
    }

    #[test]
    fn intra_role_rules_skip_self() {
        let mut m = NetworkModel::new();
        let c = m.role(RoleSpec::clients("c", 4));
        m.rule(ConnRule::new(c, c, Fanout::All));
        let net = m.generate(0);
        for &h in net.role_hosts("c") {
            assert_eq!(net.connsets.degree(h), Some(3));
        }
    }

    #[test]
    fn ground_truth_partition_groups_by_role() {
        let net = two_role_model().generate(0);
        let parts = net.truth.partition();
        assert_eq!(parts.len(), 2);
        let sizes: Vec<usize> = parts.iter().map(Vec::len).collect();
        assert!(sizes.contains(&10) && sizes.contains(&2));
        assert_eq!(net.truth.role_of(net.host("server")), Some("server"));
    }

    #[test]
    fn bernoulli_zero_and_one() {
        let mut m = NetworkModel::new();
        let c = m.role(RoleSpec::clients("c", 5));
        let s0 = m.role(RoleSpec::servers("s0", 3));
        let s1 = m.role(RoleSpec::servers("s1", 3));
        m.rule(ConnRule::new(c, s0, Fanout::Bernoulli(0.0)));
        m.rule(ConnRule::new(c, s1, Fanout::Bernoulli(1.0)));
        let net = m.generate(0);
        for &h in net.role_hosts("c") {
            assert_eq!(net.connsets.degree(h), Some(3));
        }
    }

    #[test]
    fn range_fanout_within_bounds() {
        let mut m = NetworkModel::new();
        let c = m.role(RoleSpec::clients("c", 50));
        let s = m.role(RoleSpec::servers("s", 20));
        m.rule(ConnRule::new(c, s, Fanout::Range(2, 5)));
        let net = m.generate(3);
        for &h in net.role_hosts("c") {
            let d = net.connsets.degree(h).unwrap();
            assert!((2..=5).contains(&d), "degree {d} outside [2,5]");
        }
    }

    #[test]
    fn addresses_are_consecutive_from_base() {
        let net = two_role_model().generate(0);
        let hosts: Vec<HostAddr> = net.connsets.hosts().collect();
        assert_eq!(hosts[0], HostAddr::from_octets(10, 0, 0, 1));
        for w in hosts.windows(2) {
            assert_eq!(w[1].as_u32(), w[0].as_u32() + 1);
        }
    }
}
