//! The paper's evaluation networks, rebuilt as generative models.
//!
//! Each scenario returns a [`SyntheticNetwork`] whose *structure* matches
//! what the paper describes; exact sizes come from Section 6 (110 hosts
//! for Mazu, 3638 for BigCompany, 49 041 for HugeCompany). The role
//! names double as ground-truth labels for Rand-statistic validation.

use crate::model::{ConnRule, Fanout, NetworkModel, RoleSpec, SyntheticNetwork};

/// The toy network of Figure 1: `n_sales` sales hosts talking to Mail,
/// Web and SalesDatabase; `n_eng` engineering hosts talking to Mail, Web
/// and SourceRevisionControl.
///
/// With `n_sales = n_eng = 3` this reproduces the Figure 2 walk-through
/// exactly: {Mail, Web} group at `k = 6`, the two client triangles at
/// `k = 3`, and the two database singletons via the bootstrap rule at
/// `k = 1 < 0.6 × 3`.
pub fn figure1(n_sales: usize, n_eng: usize) -> SyntheticNetwork {
    let mut m = NetworkModel::new();
    let mail = m.role(RoleSpec::servers("mail", 1));
    let web = m.role(RoleSpec::servers("web", 1));
    let salesdb = m.role(RoleSpec::servers("sales_db", 1));
    let srcctl = m.role(RoleSpec::servers("src_ctl", 1));
    let sales = m.role(RoleSpec::clients("sales", n_sales));
    let eng = m.role(RoleSpec::clients("eng", n_eng));
    m.rule(ConnRule::new(sales, mail, Fanout::All));
    m.rule(ConnRule::new(sales, web, Fanout::All));
    m.rule(ConnRule::new(sales, salesdb, Fanout::All));
    m.rule(ConnRule::new(eng, mail, Fanout::All));
    m.rule(ConnRule::new(eng, web, Fanout::All));
    m.rule(ConnRule::new(eng, srcctl, Fanout::All));
    // Deterministic: every rule is Fanout::All, so the seed is irrelevant.
    m.generate(0)
}

/// The Mazu corporate network (110 hosts), after Figure 4.
///
/// Server side: a Unix mail server (group 10 in the paper), a source
/// revision control server (group 6), a Microsoft Exchange + NT pair
/// (group 71), a web server, a DHCP/DNS box, a lab controller, and a
/// handful of small departmental servers. Client side: engineering
/// workstations on the Unix mail + source control habit; engineering
/// *managers* who, as the paper observed, use Exchange and get grouped
/// with sales; sales/admin/ops on the Exchange + NT habit; a large lab
/// of new/test machines (group 80); and the small populations a real
/// office has — a build farm, a finance pod, VoIP phones, printers, and
/// two IT administrators. Two "busy" engineering hosts with far more
/// connections than their peers reproduce the paper's observation that
/// such machines end up split from their nominal group.
pub fn mazu(seed: u64) -> SyntheticNetwork {
    let mut m = NetworkModel::new();
    let unix_mail = m.role(RoleSpec::servers("unix_mail", 1));
    let src_ctl = m.role(RoleSpec::servers("src_ctl", 1));
    let ms_exchange = m.role(RoleSpec::servers("ms_exchange", 1));
    let nt_server = m.role(RoleSpec::servers("nt_server", 1));
    let web = m.role(RoleSpec::servers("web", 1));
    let dhcp_dns = m.role(RoleSpec::servers("dhcp_dns", 1));
    let lab_ctl = m.role(RoleSpec::servers("lab_ctl", 1));
    let eng = m.role(RoleSpec::clients("eng", 24));
    let eng_mgr = m.role(RoleSpec::clients("eng_mgr", 4));
    let sales = m.role(RoleSpec::clients("sales", 14));
    let admin = m.role(RoleSpec::clients("admin", 8));
    let ops = m.role(RoleSpec::clients("ops", 8));
    let lab = m.role(RoleSpec::clients("lab", 20));
    let busy_eng = m.role(RoleSpec::clients("busy_eng", 2));
    let build_master = m.role(RoleSpec::servers("build_master", 1));
    let build_farm = m.role(RoleSpec::clients("build_farm", 5));
    let finance_srv = m.role(RoleSpec::servers("finance_srv", 1));
    let finance = m.role(RoleSpec::clients("finance", 4));
    let printers = m.role(RoleSpec::clients("printers", 3));
    let voip_mgr = m.role(RoleSpec::servers("voip_mgr", 1));
    let voip = m.role(RoleSpec::clients("voip", 6));
    let it_admin = m.role(RoleSpec::clients("it_admin", 2));

    // Engineering: Unix mail + source control always; web and DHCP/DNS
    // often; light peer-to-peer chatter spreads degrees over the paper's
    // observed 4–9 range.
    m.rule(ConnRule::new(eng, unix_mail, Fanout::All));
    m.rule(ConnRule::new(eng, src_ctl, Fanout::All));
    m.rule(ConnRule::new(eng, web, Fanout::All).participation(0.8));
    m.rule(ConnRule::new(eng, dhcp_dns, Fanout::All).participation(0.6));
    m.rule(ConnRule::new(eng, eng, Fanout::Bernoulli(0.04)));

    // Engineering managers: Exchange habit (no coding servers) — the
    // four "eng" hosts the paper found grouped with sales.
    m.rule(ConnRule::new(eng_mgr, ms_exchange, Fanout::All));
    m.rule(ConnRule::new(eng_mgr, nt_server, Fanout::All));
    m.rule(ConnRule::new(eng_mgr, web, Fanout::All).participation(0.8));

    // Sales, admin, ops: Exchange + NT; web sometimes.
    for role in [sales, admin, ops] {
        m.rule(ConnRule::new(role, ms_exchange, Fanout::All));
        m.rule(ConnRule::new(role, nt_server, Fanout::All));
        m.rule(ConnRule::new(role, web, Fanout::All).participation(0.7));
        m.rule(ConnRule::new(role, dhcp_dns, Fanout::All).participation(0.4));
    }

    // Lab/new machines: DHCP/DNS and the lab controller; occasionally web.
    m.rule(ConnRule::new(lab, dhcp_dns, Fanout::All));
    m.rule(ConnRule::new(lab, lab_ctl, Fanout::All));
    m.rule(ConnRule::new(lab, web, Fanout::All).participation(0.3));

    // Busy engineering machines: normal eng habit plus connections to
    // half the lab — far more connections than any peer.
    m.rule(ConnRule::new(busy_eng, unix_mail, Fanout::All));
    m.rule(ConnRule::new(busy_eng, src_ctl, Fanout::All));
    m.rule(ConnRule::new(busy_eng, web, Fanout::All));
    m.rule(ConnRule::new(busy_eng, lab, Fanout::Bernoulli(0.8)));

    // Build farm: source control plus the build master, nothing else —
    // a habit distinct from interactive engineering.
    m.rule(ConnRule::new(build_farm, src_ctl, Fanout::All));
    m.rule(ConnRule::new(build_farm, build_master, Fanout::All));

    // Finance pod: its own application server, Exchange for mail.
    m.rule(ConnRule::new(finance, finance_srv, Fanout::All));
    m.rule(ConnRule::new(finance, ms_exchange, Fanout::All));

    // Printers: spoken to by a few hosts from each client population.
    m.rule(ConnRule::new(sales, printers, Fanout::Exactly(1)).participation(0.5));
    m.rule(ConnRule::new(admin, printers, Fanout::Exactly(1)).participation(0.5));
    m.rule(ConnRule::new(eng, printers, Fanout::Exactly(1)).participation(0.3));

    // VoIP phones: homed on the call manager only.
    m.rule(ConnRule::new(voip, voip_mgr, Fanout::All));

    // IT administrators: touch every server.
    for srv in [
        unix_mail,
        src_ctl,
        ms_exchange,
        nt_server,
        web,
        dhcp_dns,
        lab_ctl,
        build_master,
        finance_srv,
        voip_mgr,
    ] {
        m.rule(ConnRule::new(it_admin, srv, Fanout::All));
    }

    debug_assert_eq!(m.host_count(), 110);
    m.generate(seed)
}

/// The BigCompany enterprise network (3638 hosts), after Table 1.
///
/// Reproduces the five headline populations the paper reports, plus the
/// long tail of departments that pushes the group count up:
///
/// * an *idle* pool of 1490 hosts whose only connection is to one
///   scanner host that touches roughly 45% of the network (the anomaly
///   BigCompany was investigating);
/// * 158 DHCP desktops and 156 static-IP desktops cross-connected by
///   Windows file sharing (dense inter-group, sparse intra-group);
/// * a 396-host server pool the desktops fan into;
/// * 167 IP phones homed on two call managers;
/// * 13 departments of ~94 workstations with three departmental servers
///   each, plus 7 shared infrastructure servers.
pub fn big_company(seed: u64) -> SyntheticNetwork {
    let mut m = NetworkModel::new();
    let scanner = m.role(RoleSpec::clients("scanner", 1));
    let idle = m.role(RoleSpec::clients("idle", 1490));
    let dhcp_desktops = m.role(RoleSpec::clients("dhcp_desktops", 158));
    let static_desktops = m.role(RoleSpec::clients("static_desktops", 156));
    let servers = m.role(RoleSpec::servers("servers", 396));
    let ip_phones = m.role(RoleSpec::clients("ip_phones", 167));
    let call_mgr = m.role(RoleSpec::servers("call_mgr", 2));
    let infra = m.role(RoleSpec::servers("infra", 7));

    // The scanner touches nearly every idle host and a slice of the rest
    // of the network — about 45% of all machines, per Section 6.1.
    m.rule(ConnRule::new(scanner, idle, Fanout::All));
    m.rule(ConnRule::new(scanner, servers, Fanout::Bernoulli(0.3)));
    m.rule(ConnRule::new(
        scanner,
        dhcp_desktops,
        Fanout::Bernoulli(0.3),
    ));

    // Windows file sharing: nearly complete bipartite between the two
    // desktop pools, with "little intra-group communication".
    m.rule(ConnRule::new(
        dhcp_desktops,
        static_desktops,
        Fanout::Bernoulli(0.85),
    ));
    // Both desktop pools fan into the server pool.
    m.rule(ConnRule::new(dhcp_desktops, servers, Fanout::Exactly(8)));
    m.rule(ConnRule::new(static_desktops, servers, Fanout::Exactly(8)));
    m.rule(ConnRule::new(dhcp_desktops, infra, Fanout::Exactly(2)));
    m.rule(ConnRule::new(static_desktops, infra, Fanout::Exactly(2)));

    // IP phones: every phone registers with both call managers.
    m.rule(ConnRule::new(ip_phones, call_mgr, Fanout::All));

    // Departments: 13 x (94 workstations + 3 departmental servers).
    for d in 0..13 {
        let ws = m.role(RoleSpec::clients(&format!("dept{d:02}_ws"), 94));
        let srv = m.role(RoleSpec::servers(&format!("dept{d:02}_srv"), 3));
        m.rule(ConnRule::new(ws, srv, Fanout::All));
        m.rule(ConnRule::new(ws, infra, Fanout::Exactly(2)));
        m.rule(ConnRule::new(ws, servers, Fanout::Exactly(1)).participation(0.5));
    }

    debug_assert_eq!(m.host_count(), 3638);
    m.generate(seed)
}

/// A HugeCompany-scale network (49 041 hosts by default composition),
/// after the third row of Table 2.
///
/// Structured as 12 regional campuses, each a scaled-down BigCompany
/// block (regional scanner + idle pool + desktops + servers + phones +
/// departments), sharing a small core-services tier. Used for run-time
/// scaling; the ground truth stays exact so quality can be validated at
/// this scale too.
pub fn huge_company(seed: u64) -> SyntheticNetwork {
    let mut m = NetworkModel::new();
    let core = m.role(RoleSpec::servers("core", 45));

    for r in 0..12 {
        let p = |name: &str| format!("r{r:02}_{name}");
        let scanner = m.role(RoleSpec::clients(&p("scanner"), 1));
        let idle = m.role(RoleSpec::clients(&p("idle"), 1647));
        let desktops = m.role(RoleSpec::clients(&p("desktops"), 300));
        let servers = m.role(RoleSpec::servers(&p("servers"), 120));
        let infra = m.role(RoleSpec::servers(&p("infra"), 3));
        let phones = m.role(RoleSpec::clients(&p("phones"), 150));
        let call_mgr = m.role(RoleSpec::servers(&p("call_mgr"), 2));

        m.rule(ConnRule::new(scanner, idle, Fanout::All));
        m.rule(ConnRule::new(scanner, desktops, Fanout::Bernoulli(0.2)));
        m.rule(ConnRule::new(desktops, servers, Fanout::Exactly(8)));
        m.rule(ConnRule::new(desktops, core, Fanout::Exactly(2)));
        // Regional infrastructure (DNS/mail/files): the shared habit
        // every client population has, which is what lets same-role
        // hosts with otherwise disjoint server choices group — and, once
        // the client pools contract, lets the server tier group through
        // the client group nodes (the same mechanism BigCompany's
        // NetBIOS cross-traffic provides there).
        m.rule(ConnRule::new(desktops, infra, Fanout::All));
        m.rule(ConnRule::new(phones, call_mgr, Fanout::All));

        // 20 departments of 90 workstations + 3 servers per region.
        for d in 0..20 {
            let ws = m.role(RoleSpec::clients(&p(&format!("dept{d:02}_ws")), 90));
            let srv = m.role(RoleSpec::servers(&p(&format!("dept{d:02}_srv")), 3));
            m.rule(ConnRule::new(ws, srv, Fanout::All));
            m.rule(ConnRule::new(ws, infra, Fanout::All));
            m.rule(ConnRule::new(ws, core, Fanout::Exactly(2)));
            m.rule(ConnRule::new(ws, servers, Fanout::Exactly(1)).participation(0.4));
        }
    }

    debug_assert_eq!(m.host_count(), 49_041);
    m.generate(seed)
}

/// A small office (25 hosts): one all-in-one server, a NAS, a printer,
/// fifteen desktops, five laptops on flaky habits, and a guest device.
///
/// Not from the paper — a preset for downstream users whose networks are
/// far smaller than Mazu, and a regression fixture for the algorithms'
/// small-n behavior (tiny groups, near-universal shared servers).
pub fn small_office(seed: u64) -> SyntheticNetwork {
    let mut m = NetworkModel::new();
    let server = m.role(RoleSpec::servers("server", 1));
    let nas = m.role(RoleSpec::servers("nas", 1));
    let printer = m.role(RoleSpec::servers("printer", 1));
    let desktops = m.role(RoleSpec::clients("desktops", 15));
    let laptops = m.role(RoleSpec::clients("laptops", 5));
    let guest = m.role(RoleSpec::clients("guest", 2));

    m.rule(ConnRule::new(desktops, server, Fanout::All));
    m.rule(ConnRule::new(desktops, nas, Fanout::All).participation(0.9));
    m.rule(ConnRule::new(desktops, printer, Fanout::All).participation(0.6));
    m.rule(ConnRule::new(laptops, server, Fanout::All));
    m.rule(ConnRule::new(laptops, nas, Fanout::All).participation(0.4));
    m.rule(ConnRule::new(guest, server, Fanout::All));

    debug_assert_eq!(m.host_count(), 25);
    m.generate(seed)
}

/// A small datacenter (620 hosts): three web tiers fronting an app tier
/// and a database pair, a batch fleet on object storage, and a
/// monitoring host that touches everything (a *benign* full-fanout hub,
/// unlike the BigCompany scanner).
///
/// Exercises the algorithms on server-to-server east-west traffic, where
/// the client/server asymmetry of enterprise scenarios disappears.
pub fn datacenter(seed: u64) -> SyntheticNetwork {
    let mut m = NetworkModel::new();
    let lb = m.role(RoleSpec::servers("lb", 4));
    let web = m.role(RoleSpec::servers("web", 240));
    let app = m.role(RoleSpec::servers("app", 120));
    let db = m.role(RoleSpec::servers("db", 2));
    let batch = m.role(RoleSpec::clients("batch", 200));
    let storage = m.role(RoleSpec::servers("storage", 12));
    let cache = m.role(RoleSpec::servers("cache", 40));
    let monitor = m.role(RoleSpec::clients("monitor", 2));

    m.rule(ConnRule::new(web, lb, Fanout::All));
    m.rule(ConnRule::new(web, app, Fanout::Exactly(6)));
    m.rule(ConnRule::new(web, cache, Fanout::Exactly(3)));
    m.rule(ConnRule::new(app, db, Fanout::All));
    m.rule(ConnRule::new(app, cache, Fanout::Exactly(3)));
    m.rule(ConnRule::new(batch, storage, Fanout::Exactly(4)));
    m.rule(ConnRule::new(batch, db, Fanout::Exactly(1)).participation(0.3));
    for tier in [lb, web, app, db, storage, cache] {
        m.rule(ConnRule::new(monitor, tier, Fanout::All));
    }

    debug_assert_eq!(m.host_count(), 620);
    m.generate(seed)
}

/// A department-structured enterprise with ~`n` hosts: 46-host
/// departments (43 workstations + 3 departmental servers) around a
/// shared server core that scales with the population (one core server
/// per 500 hosts), so no single host degenerates into a mega-hub.
///
/// This is the scale-sweep workload of `dataplane_bench` and the
/// default scenario of `rcctl profile`: structurally uniform at any
/// population, so per-stage costs stay comparable from 1k to 100k
/// hosts.
pub fn department(n: usize, seed: u64) -> SyntheticNetwork {
    let mut m = NetworkModel::new();
    let core_count = (n / 500).max(4);
    let core = m.role(RoleSpec::servers("core", core_count));
    let dept_size = 46;
    let depts = (n.saturating_sub(core_count) / dept_size).max(1);
    for d in 0..depts {
        let ws = m.role(RoleSpec::clients(&format!("d{d}_ws"), 43));
        let srv = m.role(RoleSpec::servers(&format!("d{d}_srv"), 3));
        m.rule(ConnRule::new(ws, srv, Fanout::All));
        m.rule(ConnRule::new(ws, core, Fanout::Exactly(2)));
    }
    m.generate(seed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_structure() {
        let net = figure1(3, 3);
        assert_eq!(net.host_count(), 10);
        let mail = net.host("mail");
        let web = net.host("web");
        // Mail and Web each see all 6 clients.
        assert_eq!(net.connsets.degree(mail), Some(6));
        assert_eq!(net.connsets.degree(web), Some(6));
        // Mail and Web share all six clients as common neighbors.
        assert_eq!(net.connsets.similarity(mail, web), 6);
        // A sales host and an eng host share exactly Mail and Web.
        let s = net.role_hosts("sales")[0];
        let e = net.role_hosts("eng")[0];
        assert_eq!(net.connsets.similarity(s, e), 2);
        // Sales pairs also share the sales database.
        let s2 = net.role_hosts("sales")[1];
        assert_eq!(net.connsets.similarity(s, s2), 3);
    }

    #[test]
    fn mazu_has_110_hosts_and_plausible_degrees() {
        let net = mazu(42);
        assert_eq!(net.host_count(), 110);
        // Engineering degrees land in a narrow band around the paper's
        // observed 4–9 connections.
        for &h in net.role_hosts("eng") {
            let d = net.connsets.degree(h).unwrap();
            assert!((2..=12).contains(&d), "eng degree {d} out of band");
        }
        // The busy engineering hosts out-connect everyone in their role.
        let busy_min = net
            .role_hosts("busy_eng")
            .iter()
            .map(|&h| net.connsets.degree(h).unwrap())
            .min()
            .unwrap();
        assert!(busy_min > 12, "busy_eng degree {busy_min} too small");
    }

    #[test]
    fn mazu_is_deterministic_per_seed() {
        assert_eq!(mazu(7).connsets, mazu(7).connsets);
        assert_ne!(mazu(7).connsets, mazu(8).connsets);
    }

    #[test]
    fn big_company_shape() {
        let net = big_company(1);
        assert_eq!(net.host_count(), 3638);
        let scanner = net.host("scanner");
        let deg = net.connsets.degree(scanner).unwrap();
        // Roughly 45% of the network.
        assert!(
            (1400..=1800).contains(&deg),
            "scanner degree {deg} not near 45% of hosts"
        );
        // Idle hosts have at most the scanner as neighbor.
        let idle_max = net
            .role_hosts("idle")
            .iter()
            .map(|&h| net.connsets.degree(h).unwrap())
            .max()
            .unwrap();
        assert!(idle_max <= 1);
        // Phones are homed on exactly the two call managers.
        for &p in net.role_hosts("ip_phones") {
            assert_eq!(net.connsets.degree(p), Some(2));
        }
    }

    #[test]
    fn small_office_structure() {
        let net = small_office(3);
        assert_eq!(net.host_count(), 25);
        // Everybody reaches the all-in-one server.
        let server = net.host("server");
        assert_eq!(net.connsets.degree(server), Some(22));
        for &d in net.role_hosts("desktops") {
            assert!(net.connsets.connected(d, server));
        }
    }

    #[test]
    fn datacenter_structure() {
        let net = datacenter(3);
        assert_eq!(net.host_count(), 620);
        // App servers all reach both databases.
        for &a in net.role_hosts("app") {
            for &d in net.role_hosts("db") {
                assert!(net.connsets.connected(a, d));
            }
        }
        // The monitor host touches every web server.
        let mon = net.role_hosts("monitor")[0];
        let deg = net.connsets.degree(mon).unwrap();
        assert!(deg >= 418, "monitor degree {deg} too small");
    }

    #[test]
    fn department_structure() {
        let net = department(1_000, 7);
        // 2 core servers rounds up to the 4-minimum; 21 departments.
        assert_eq!(net.host_count(), 4 + 21 * 46);
        // Workstations reach all three of their department's servers.
        for &w in &net.role_hosts("d0_ws")[..3] {
            for &s in net.role_hosts("d0_srv") {
                assert!(net.connsets.connected(w, s));
            }
        }
    }

    #[test]
    fn huge_company_host_count() {
        // Generation only; the grouping run is exercised by the bench
        // harness. Just validate the composition.
        let net = huge_company(1);
        assert_eq!(net.host_count(), 49_041);
    }
}
