//! Expansion of connection sets into flow-record traces.
//!
//! The generator produces [`flow::ConnectionSets`] directly, but the full
//! pipeline (probes → parsers → aggregation → grouping) wants raw flow
//! records. This module fabricates a plausible packet-level day: each
//! connection becomes several flows spread over the observation window,
//! with client/server port conventions, so parsers and the aggregator can
//! be exercised end to end and re-derive the exact same connection sets.

use flow::{ConnectionSets, FlowRecord, HostAddr, Proto};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Options for trace expansion.
#[derive(Clone, Copy, Debug)]
pub struct TraceOptions {
    /// Minimum flows fabricated per connection.
    pub min_flows_per_conn: u32,
    /// Maximum flows fabricated per connection.
    pub max_flows_per_conn: u32,
    /// Trace start time, milliseconds.
    pub start_ms: u64,
    /// Trace length, milliseconds.
    pub span_ms: u64,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            min_flows_per_conn: 1,
            max_flows_per_conn: 4,
            start_ms: 0,
            span_ms: 86_400_000, // one day, like the paper's traces
        }
    }
}

/// Well-known destination ports the fabricated services listen on.
const SERVICE_PORTS: [u16; 8] = [25, 53, 80, 110, 139, 143, 443, 445];

/// Expands connection sets into a shuffled flow trace.
///
/// Each undirected connection yields 1..=N flows. The endpoint with the
/// higher connection-set degree is treated as the "server" side (ties
/// broken toward the lower address) and receives a stable well-known
/// port (hashed from the pair) so port- and direction-based analyses see
/// consistent services. Rebuilding connection sets from the returned
/// records (with no filters) reproduces `cs` exactly.
pub fn expand(cs: &ConnectionSets, opts: TraceOptions, seed: u64) -> Vec<FlowRecord> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut out = Vec::new();
    for ((lo, hi), _stats) in cs.pairs() {
        // Pick the server side by degree: role servers fan out to many
        // clients, so the busier endpoint is the service.
        let (a, b) = if cs.degree(hi).unwrap_or(0) > cs.degree(lo).unwrap_or(0) {
            (hi, lo) // `a` is the server side below
        } else {
            (lo, hi)
        };
        let flows = if opts.max_flows_per_conn > opts.min_flows_per_conn {
            rng.gen_range(opts.min_flows_per_conn..=opts.max_flows_per_conn)
        } else {
            opts.min_flows_per_conn
        }
        .max(1);
        let service = SERVICE_PORTS[(a.as_u32() ^ b.as_u32()) as usize % SERVICE_PORTS.len()];
        for _ in 0..flows {
            let start = opts.start_ms + rng.gen_range(0..opts.span_ms.max(1));
            let dur = rng.gen_range(1..60_000u64);
            let client_port = rng.gen_range(1024..=u16::MAX);
            // The client (higher address by convention) opens to the server.
            let mut rec = FlowRecord {
                src: b,
                dst: a,
                proto: if service == 53 {
                    Proto::Udp
                } else {
                    Proto::Tcp
                },
                src_port: client_port,
                dst_port: service,
                packets: rng.gen_range(2..200),
                bytes: rng.gen_range(120..1_000_000),
                start_ms: start,
                end_ms: start + dur,
            };
            // Occasionally record the reverse direction, as a probe on a
            // bidirectional link would.
            if rng.gen_bool(0.5) {
                rec = rec.reversed();
            }
            out.push(rec);
        }
    }
    // Interleave by time so the trace looks like a capture, not a dump.
    out.sort_by_key(|r| r.start_ms);
    out
}

/// Ensures every host of `cs` (including isolated ones) appears in a
/// trace-derived population by listing them; callers re-adding hosts
/// after parsing use this to keep isolated hosts in `I`.
pub fn population(cs: &ConnectionSets) -> Vec<HostAddr> {
    cs.hosts().collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::scenarios::figure1;
    use flow::ConnsetBuilder;

    #[test]
    fn expansion_round_trips_connection_sets() {
        let net = figure1(3, 3);
        let trace = expand(&net.connsets, TraceOptions::default(), 99);
        let mut builder = ConnsetBuilder::new();
        builder.add_records(trace.iter());
        let rebuilt = builder.build();
        // Same pairs (stats will differ — multiple fabricated flows).
        assert_eq!(rebuilt.edges(), net.connsets.edges());
    }

    #[test]
    fn expansion_is_deterministic() {
        let net = figure1(2, 2);
        let a = expand(&net.connsets, TraceOptions::default(), 5);
        let b = expand(&net.connsets, TraceOptions::default(), 5);
        assert_eq!(a, b);
    }

    #[test]
    fn flows_within_time_span() {
        let net = figure1(3, 3);
        let opts = TraceOptions {
            start_ms: 1000,
            span_ms: 5000,
            ..TraceOptions::default()
        };
        for r in expand(&net.connsets, opts, 1) {
            assert!(r.start_ms >= 1000 && r.start_ms < 6000);
        }
    }

    #[test]
    fn trace_is_time_sorted() {
        let net = figure1(3, 3);
        let trace = expand(&net.connsets, TraceOptions::default(), 7);
        for w in trace.windows(2) {
            assert!(w[0].start_ms <= w[1].start_ms);
        }
    }

    #[test]
    fn service_port_is_stable_per_pair() {
        let net = figure1(3, 3);
        let trace = expand(&net.connsets, TraceOptions::default(), 7);
        use std::collections::HashMap;
        let mut per_pair: HashMap<_, u16> = HashMap::new();
        for r in &trace {
            let key = r.undirected_pair();
            let service = r.dst_port.min(r.src_port); // well-known side
            let entry = per_pair.entry(key).or_insert(service);
            assert_eq!(*entry, service);
        }
    }

    #[test]
    fn population_lists_all_hosts() {
        let net = figure1(3, 3);
        assert_eq!(population(&net.connsets).len(), 10);
    }
}
