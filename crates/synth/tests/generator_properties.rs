//! Property-based tests of the synthetic network generator and the
//! churn operators.

use flow::HostAddr;
use proptest::prelude::*;
use synthnet::{churn, ConnRule, Fanout, NetworkModel, RoleSpec, SyntheticNetwork};

/// Strategy: a random small role/rule model.
fn arb_model() -> impl Strategy<Value = NetworkModel> {
    (
        prop::collection::vec(1usize..8, 2..5), // role sizes
        prop::collection::vec((0usize..4, 0usize..4, 0u8..4, 0.0f64..=1.0), 1..8), // rules: from, to, fanout-kind, participation
    )
        .prop_map(|(sizes, rules)| {
            let mut m = NetworkModel::new();
            let ids: Vec<usize> = sizes
                .iter()
                .enumerate()
                .map(|(i, &n)| m.role(RoleSpec::clients(&format!("r{i}"), n)))
                .collect();
            for (from, to, kind, part) in rules {
                let from = ids[from % ids.len()];
                let to = ids[to % ids.len()];
                let fanout = match kind {
                    0 => Fanout::All,
                    1 => Fanout::Exactly(2),
                    2 => Fanout::Range(1, 3),
                    _ => Fanout::Bernoulli(0.5),
                };
                m.rule(ConnRule::new(from, to, fanout).participation(part));
            }
            m
        })
}

fn invariants(net: &SyntheticNetwork) {
    // Every host has a ground-truth role and appears exactly once in
    // hosts_by_role.
    assert_eq!(net.truth.len(), net.host_count());
    let listed: usize = net.hosts_by_role.values().map(Vec::len).sum();
    assert_eq!(listed, net.host_count());
    for (h, role) in net.truth.iter() {
        assert!(net.role_hosts(role).contains(&h));
        assert!(net.connsets.contains(h));
    }
    // Connection sets are symmetric and self-loop-free.
    for h in net.connsets.hosts() {
        let nbrs = net.connsets.neighbors(h).expect("host exists");
        assert!(!nbrs.contains(h));
        for n in nbrs {
            assert!(net
                .connsets
                .neighbors(n)
                .expect("neighbor exists")
                .contains(h));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn generation_invariants(model in arb_model(), seed in any::<u64>()) {
        let net = model.generate(seed);
        prop_assert_eq!(net.host_count(), model.host_count());
        invariants(&net);
    }

    #[test]
    fn generation_is_deterministic(model in arb_model(), seed in any::<u64>()) {
        let a = model.generate(seed);
        let b = model.generate(seed);
        prop_assert_eq!(a.connsets, b.connsets);
    }

    #[test]
    fn churn_preserves_invariants(model in arb_model(), seed in any::<u64>()) {
        let mut net = model.generate(seed);
        if net.host_count() < 4 {
            return Ok(());
        }
        let hosts: Vec<HostAddr> = net.connsets.hosts().collect();
        // Swap two hosts.
        churn::swap_hosts(&mut net, hosts[0], hosts[1]);
        invariants(&net);
        // Replace one with a fresh address.
        let fresh = HostAddr::v4(0xFFFF_0001);
        churn::replace_host(&mut net, hosts[2], fresh);
        invariants(&net);
        // Clone one.
        churn::add_host_like(&mut net, fresh, HostAddr::v4(0xFFFF_0002));
        invariants(&net);
        // Remove one.
        churn::remove_host(&mut net, hosts[3]);
        invariants(&net);
    }

    #[test]
    fn swap_is_an_involution(model in arb_model(), seed in any::<u64>()) {
        let net = model.generate(seed);
        if net.host_count() < 2 {
            return Ok(());
        }
        let hosts: Vec<HostAddr> = net.connsets.hosts().collect();
        let mut swapped = net.clone();
        churn::swap_hosts(&mut swapped, hosts[0], hosts[1]);
        churn::swap_hosts(&mut swapped, hosts[0], hosts[1]);
        prop_assert_eq!(&swapped.connsets, &net.connsets);
    }

    #[test]
    fn split_server_partitions_neighbors(model in arb_model(), seed in any::<u64>()) {
        let net = model.generate(seed);
        // Pick the highest-degree host as the server to split.
        let Some(server) = net
            .connsets
            .hosts()
            .max_by_key(|&h| net.connsets.degree(h).unwrap_or(0))
        else {
            return Ok(());
        };
        let deg = net.connsets.degree(server).unwrap_or(0);
        if deg == 0 {
            return Ok(());
        }
        let mut split = net.clone();
        let (r1, r2) = (HostAddr::v4(0xFFFF_0010), HostAddr::v4(0xFFFF_0011));
        churn::split_server(&mut split, server, r1, r2);
        let d1 = split.connsets.degree(r1).unwrap_or(0);
        let d2 = split.connsets.degree(r2).unwrap_or(0);
        prop_assert_eq!(d1 + d2, deg);
        prop_assert!(d1.abs_diff(d2) <= 1);
        invariants(&split);
    }
}
