//! Allocation accounting: a counting `#[global_allocator]` wrapper plus
//! the thread-local tallies spans snapshot for per-stage attribution.
//!
//! The wrapper is **opt-in per binary**: `rcctl` and the bench binaries
//! install it, library code never does. When it is not installed the
//! tallies stay at zero and every `alloc_bytes`/`allocs` column in the
//! profile output renders as 0 — the span machinery itself does not
//! care either way, it just records counter deltas.
//!
//! Attribution is per-thread by construction: the counters live in
//! thread-local cells, and spans (which are documented as belonging to
//! the single-threaded orchestration path) snapshot the cells of the
//! thread that opened them. Allocations made by worker threads inside
//! parallel sections are counted on *those* threads' cells and are
//! therefore invisible to the orchestration-path spans — parallel
//! stages under-report. That is deliberate: cross-thread attribution
//! would need synchronization inside the allocator, which is exactly
//! the kind of perturbation a profiler must not introduce.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

// Const-initialized `Cell<u64>`s: no lazy initialization and no
// destructor, so reading or bumping them from inside `GlobalAlloc`
// cannot recurse into the allocator or touch TLS teardown machinery.
thread_local! {
    static ALLOC_BYTES: Cell<u64> = const { Cell::new(0) };
    static ALLOC_COUNT: Cell<u64> = const { Cell::new(0) };
}

/// Cumulative `(bytes, allocations)` allocated by the current thread
/// since it started, as counted by [`CountingAlloc`]. Monotonically
/// non-decreasing; `(0, 0)` forever when no counting allocator is
/// installed in the binary. Spans snapshot this at open and close and
/// store the difference.
pub fn alloc_counters() -> (u64, u64) {
    let bytes = ALLOC_BYTES.try_with(Cell::get).unwrap_or(0);
    let count = ALLOC_COUNT.try_with(Cell::get).unwrap_or(0);
    (bytes, count)
}

fn note(bytes: usize) {
    // `try_with`: TLS may be unavailable during thread teardown.
    // Dropping a sample there is fine; panicking in the allocator is
    // not.
    let _ = ALLOC_BYTES.try_with(|b| b.set(b.get().wrapping_add(bytes as u64)));
    let _ = ALLOC_COUNT.try_with(|c| c.set(c.get().wrapping_add(1)));
}

/// A [`System`]-delegating allocator that counts successful allocations
/// into the thread-local tallies read by [`alloc_counters`].
///
/// Install it in a **binary** (never a library):
///
/// ```ignore
/// #[global_allocator]
/// static ALLOC: telemetry::CountingAlloc = telemetry::CountingAlloc::new();
/// ```
///
/// Counting rules: `alloc`/`alloc_zeroed` add the full requested size
/// and one allocation; a growing `realloc` adds the growth and one
/// allocation (the data move is what costs); shrinking `realloc` and
/// `dealloc` add nothing — the tallies measure allocation pressure,
/// not live bytes.
pub struct CountingAlloc;

impl CountingAlloc {
    /// The allocator value for the `#[global_allocator]` static.
    pub const fn new() -> Self {
        CountingAlloc
    }
}

impl Default for CountingAlloc {
    fn default() -> Self {
        Self::new()
    }
}

// SAFETY: pure delegation to `System`; the bookkeeping around it only
// touches const-initialized thread-local `Cell<u64>`s, which cannot
// allocate, deallocate, or unwind.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc(layout);
        if !p.is_null() {
            note(layout.size());
        }
        p
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        let p = System.alloc_zeroed(layout);
        if !p.is_null() {
            note(layout.size());
        }
        p
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        let p = System.realloc(ptr, layout, new_size);
        if !p.is_null() && new_size > layout.size() {
            note(new_size - layout.size());
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    // The test binary does not install the allocator, so the tallies
    // stay at zero — which is itself the contract for library builds.
    #[test]
    fn counters_are_zero_without_installation() {
        let (bytes, allocs) = alloc_counters();
        let _v: Vec<u64> = (0..64).collect();
        assert_eq!(alloc_counters(), (bytes, allocs));
    }

    #[test]
    fn note_accumulates() {
        let before = alloc_counters();
        note(128);
        note(64);
        let after = alloc_counters();
        assert_eq!(after.0 - before.0, 192);
        assert_eq!(after.1 - before.1, 2);
    }
}
