//! The structured event journal: a bounded, lock-light flight recorder
//! for typed decision events.
//!
//! Metrics aggregate and spans time; neither can answer *why one host*
//! landed in a group. Events carry that per-decision provenance: each
//! [`Event`] is a timestamped, sequenced, named record with typed
//! fields, appended to a fixed-capacity ring ([`EventJournal`]) that
//! evicts oldest-first under overflow, so a long-running pipeline keeps
//! a recent window of decisions at bounded memory.
//!
//! The journal is "lock-light": recording takes one short, uncontended
//! mutex acquisition (push + possible pop), and the sequence counter and
//! eviction bookkeeping live inside the same critical section so
//! `seq` order always matches ring order. There is no global state; the
//! journal lives on the [`Recorder`](crate::Recorder), and instrumented
//! code only touches it behind `Option<&Recorder>` — detached runs never
//! allocate a field value or read a clock.
//!
//! Event names follow the same `roleclass_<layer>_<name>` convention as
//! metrics and are linted by the workspace `metric_names` test.
//!
//! Export is JSONL — one self-contained JSON object per line:
//!
//! ```text
//! {"seq":0,"ts_ns":1234,"layer":"engine","name":"roleclass_engine_host_grouped","fields":{"host":"10.0.0.1","k":3}}
//! ```

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// Default ring capacity of a [`Recorder`](crate::Recorder)'s journal:
/// roomy enough for every decision of a mid-size window, small enough
/// (tens of MB worst case) to forget about.
pub const DEFAULT_EVENT_CAPACITY: usize = 65_536;

/// A typed field value. `From` impls cover the types call sites emit, so
/// field lists read as `("k", k.into())`.
#[derive(Clone, Debug, PartialEq)]
pub enum FieldValue {
    /// Unsigned integer (counts, ids, sizes, timestamps).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float (similarities, scores, seconds).
    F64(f64),
    /// Boolean (verdicts, flags).
    Bool(bool),
    /// Free-form text (host addresses, reasons). JSON-escaped on export.
    Str(String),
}

impl From<u64> for FieldValue {
    fn from(v: u64) -> Self {
        FieldValue::U64(v)
    }
}

impl From<usize> for FieldValue {
    fn from(v: usize) -> Self {
        FieldValue::U64(v as u64)
    }
}

impl From<u32> for FieldValue {
    fn from(v: u32) -> Self {
        FieldValue::U64(u64::from(v))
    }
}

impl From<i64> for FieldValue {
    fn from(v: i64) -> Self {
        FieldValue::I64(v)
    }
}

impl From<f64> for FieldValue {
    fn from(v: f64) -> Self {
        FieldValue::F64(v)
    }
}

impl From<bool> for FieldValue {
    fn from(v: bool) -> Self {
        FieldValue::Bool(v)
    }
}

impl From<String> for FieldValue {
    fn from(v: String) -> Self {
        FieldValue::Str(v)
    }
}

impl From<&str> for FieldValue {
    fn from(v: &str) -> Self {
        FieldValue::Str(v.to_string())
    }
}

/// One recorded event.
#[derive(Clone, Debug)]
pub struct Event {
    /// Timestamp in nanoseconds. Journal-recorded events use a monotonic
    /// clock relative to journal creation; durable journals (the
    /// aggregator flight recorder) stamp wall-clock nanoseconds since
    /// the UNIX epoch instead. Either way `ts_ns` is non-decreasing
    /// within one journal.
    pub ts_ns: u64,
    /// Sequence number, dense and strictly increasing per journal —
    /// the total order of decisions, even when `ts_ns` ties.
    pub seq: u64,
    /// The emitting layer (`engine`, `aggregator`, ...).
    pub layer: &'static str,
    /// Full event name, `roleclass_<layer>_<name>`.
    pub name: &'static str,
    /// Typed fields, in emission order.
    pub fields: Vec<(&'static str, FieldValue)>,
}

impl Event {
    /// Renders the event as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(96 + self.fields.len() * 24);
        self.write_json(&mut out);
        out
    }

    /// Appends the JSON rendering of the event to `out`.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"seq\":{},\"ts_ns\":{},\"layer\":\"{}\",\"name\":\"{}\",\"fields\":{{",
            self.seq, self.ts_ns, self.layer, self.name
        );
        for (i, (key, value)) in self.fields.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{key}\":");
            match value {
                FieldValue::U64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::I64(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::F64(v) => out.push_str(&crate::registry::fmt_f64(*v)),
                FieldValue::Bool(v) => {
                    let _ = write!(out, "{v}");
                }
                FieldValue::Str(v) => {
                    out.push('"');
                    escape_json_into(out, v);
                    out.push('"');
                }
            }
        }
        out.push_str("}}");
    }
}

/// JSON string escaping: quotes, backslashes, and control characters.
/// Unlike metric names, field values are arbitrary text (host addresses,
/// probe error messages), so escaping is not optional here.
pub(crate) fn escape_json_into(out: &mut String, s: &str) {
    use std::fmt::Write as _;
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// The mutable journal state, all under one mutex so sequence numbers,
/// ring order, and the drop counter can never disagree.
#[derive(Debug, Default)]
struct JournalState {
    ring: VecDeque<Event>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded ring of [`Event`]s — the flight recorder.
///
/// Oldest events are evicted first once `capacity` is reached;
/// [`EventJournal::dropped`] counts evictions so consumers can tell a
/// short history from a truncated one.
#[derive(Debug)]
pub struct EventJournal {
    epoch: Instant,
    capacity: usize,
    state: Mutex<JournalState>,
}

impl EventJournal {
    /// A journal holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> Self {
        EventJournal {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            state: Mutex::new(JournalState::default()),
        }
    }

    /// Records one event, stamping it with the journal's monotonic clock
    /// and the next sequence number. Evicts the oldest event when full.
    pub fn record(
        &self,
        layer: &'static str,
        name: &'static str,
        fields: Vec<(&'static str, FieldValue)>,
    ) {
        debug_assert!(
            crate::registry::valid_name(name) && crate::registry::valid_name(layer),
            "event names follow the metric convention: [a-z][a-z0-9_]*"
        );
        let ts_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let seq = st.next_seq;
        st.next_seq += 1;
        st.ring.push_back(Event {
            ts_ns,
            seq,
            layer,
            name,
            fields,
        });
        if st.ring.len() > self.capacity {
            st.ring.pop_front();
            st.dropped += 1;
        }
    }

    /// Maximum number of retained events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained events.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .ring
            .len()
    }

    /// `true` when nothing has been recorded (or everything was taken).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Events evicted by overflow so far.
    pub fn dropped(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// Snapshot of the retained events, oldest first.
    pub fn snapshot(&self) -> Vec<Event> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .ring
            .iter()
            .cloned()
            .collect()
    }

    /// Takes (and clears) the retained events, oldest first. Sequence
    /// numbering continues where it left off.
    pub fn take(&self) -> Vec<Event> {
        std::mem::take(&mut self.state.lock().unwrap_or_else(|e| e.into_inner()).ring).into()
    }

    /// The most recent `n` retained events, oldest of those first.
    pub fn tail(&self, n: usize) -> Vec<Event> {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let skip = st.ring.len().saturating_sub(n);
        st.ring.iter().skip(skip).cloned().collect()
    }

    /// Renders the retained events as JSONL, one event per line, oldest
    /// first. Empty journal renders as the empty string.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for ev in self.snapshot() {
            ev.write_json(&mut out);
            out.push('\n');
        }
        out
    }
}

impl Default for EventJournal {
    fn default() -> Self {
        EventJournal::new(DEFAULT_EVENT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_dense_seq() {
        let j = EventJournal::new(16);
        j.record("engine", "roleclass_engine_a", vec![("x", 1u64.into())]);
        j.record("engine", "roleclass_engine_b", vec![]);
        let evs = j.snapshot();
        assert_eq!(evs.len(), 2);
        assert_eq!(evs[0].seq, 0);
        assert_eq!(evs[1].seq, 1);
        assert!(evs[0].ts_ns <= evs[1].ts_ns);
        assert_eq!(evs[0].name, "roleclass_engine_a");
        assert_eq!(j.dropped(), 0);
    }

    #[test]
    fn overflow_evicts_oldest_first() {
        let j = EventJournal::new(3);
        for i in 0..5u64 {
            j.record("engine", "roleclass_engine_tick", vec![("i", i.into())]);
        }
        let evs = j.snapshot();
        assert_eq!(evs.len(), 3);
        assert_eq!(j.dropped(), 2);
        let seqs: Vec<u64> = evs.iter().map(|e| e.seq).collect();
        assert_eq!(seqs, [2, 3, 4]);
    }

    #[test]
    fn take_clears_but_seq_continues() {
        let j = EventJournal::new(8);
        j.record("engine", "roleclass_engine_a", vec![]);
        assert_eq!(j.take().len(), 1);
        assert!(j.is_empty());
        j.record("engine", "roleclass_engine_b", vec![]);
        assert_eq!(j.snapshot()[0].seq, 1);
    }

    #[test]
    fn tail_returns_newest() {
        let j = EventJournal::new(8);
        for i in 0..5u64 {
            j.record("engine", "roleclass_engine_tick", vec![("i", i.into())]);
        }
        let t = j.tail(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].seq, 3);
        assert_eq!(t[1].seq, 4);
        assert_eq!(j.tail(100).len(), 5);
    }

    #[test]
    fn json_escapes_strings() {
        let j = EventJournal::new(4);
        j.record(
            "engine",
            "roleclass_engine_note",
            vec![("msg", "a\"b\\c\nd\u{1}".into())],
        );
        let line = j.to_jsonl();
        assert!(line.contains("\\\"b"));
        assert!(line.contains("\\\\c"));
        assert!(line.contains("\\n"));
        assert!(line.contains("\\u0001"));
        assert!(line.ends_with('\n'));
    }

    #[test]
    fn json_field_types_render() {
        let mut ev = Event {
            ts_ns: 7,
            seq: 3,
            layer: "engine",
            name: "roleclass_engine_all_types",
            fields: vec![
                ("u", FieldValue::U64(42)),
                ("i", FieldValue::I64(-5)),
                ("f", FieldValue::F64(1.5)),
                ("whole", FieldValue::F64(2.0)),
                ("b", FieldValue::Bool(true)),
                ("s", FieldValue::Str("x".into())),
            ],
        };
        let json = ev.to_json();
        let expected = concat!(
            "{\"seq\":3,\"ts_ns\":7,\"layer\":\"engine\",\"name\":\"roleclass_engine_all_types\",",
            "\"fields\":{\"u\":42,\"i\":-5,\"f\":1.5,\"whole\":2.0,\"b\":true,\"s\":\"x\"}}"
        );
        assert_eq!(json, expected);
        ev.fields.clear();
        assert!(ev.to_json().ends_with("\"fields\":{}}"));
    }
}
