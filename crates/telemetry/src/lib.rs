//! First-class telemetry for the role-classification pipeline.
//!
//! The paper's system ran continuously inside an enterprise monitor;
//! operators needed to know *why* a window degraded or a grouping
//! shifted, not just what the final partition was. This crate is the
//! substrate for that visibility, built to the workspace's offline
//! constraints: **no dependencies**, no global state, and a disabled
//! path that is a no-op.
//!
//! Two halves:
//!
//! * [`Registry`] — a named collection of [`Counter`]s, [`Gauge`]s, and
//!   fixed-bucket [`Histogram`]s. Handles are cheap `Arc`-backed atomics
//!   you fetch once and hammer from hot paths without locking; the
//!   registry itself is only locked at (de)registration and export
//!   time. Exports are a Prometheus text-format dump
//!   ([`Registry::prometheus_text`]) and a JSON snapshot
//!   ([`Registry::json_snapshot`]), both in stable (sorted) name order.
//! * **Spans** — lightweight hierarchical timers over
//!   [`std::time::Instant`]. Open one with [`Recorder::span`] (or
//!   [`span`] on an `Option<&Recorder>`); dropping the guard closes it
//!   and attaches it to the enclosing span, producing a tree that
//!   [`Recorder::render_spans`] prints with per-node durations.
//!
//! Instrumented code takes an `Option<&Recorder>` (or stores pre-fetched
//! metric handles). With `None`, every entry point returns immediately —
//! no clock reads, no allocation, no atomics — so the uninstrumented
//! pipeline is bit-identical to and as fast as the pre-telemetry one.
//!
//! Metric naming convention: `roleclass_<layer>_<name>`, snake_case
//! (`[a-z][a-z0-9_]*`), enforced at registration and linted across the
//! workspace by the `metric_names` integration test.
//!
//! ```
//! use telemetry::Recorder;
//!
//! let rec = Recorder::new();
//! let builds = rec.registry().counter("roleclass_kernel_builds_total");
//! {
//!     let _outer = rec.span("engine.form");
//!     let _inner = rec.span("kernel.build");
//!     builds.inc();
//! } // guards drop: the tree is recorded
//! assert_eq!(builds.get(), 1);
//! assert!(rec.render_spans().contains("kernel.build"));
//! assert!(rec.registry().prometheus_text().contains("roleclass_kernel_builds_total 1"));
//! ```

mod alloc;
mod events;
mod profile;
mod registry;
mod span;
mod timeseries;

pub use alloc::{alloc_counters, CountingAlloc};
pub use events::{Event, EventJournal, FieldValue, DEFAULT_EVENT_CAPACITY};
pub use profile::{
    collapsed_stacks, parse_collapsed_line, ProfileEntry, ProfileTable, PROFILE_METRIC_NAMES,
};
pub use registry::{Counter, Gauge, Histogram, Registry};
pub use span::{render_span_tree, span_tree_json, Span, SpanNode};
pub use timeseries::{MetricFrame, TimeseriesRing, DEFAULT_TIMESERIES_CAPACITY};

use std::sync::Mutex;

/// Default duration buckets (seconds) for latency histograms, spanning
/// sub-millisecond kernel phases to multi-second full-trace windows.
pub const DURATION_BUCKETS: &[f64] = &[
    0.000_1, 0.000_5, 0.001, 0.005, 0.01, 0.05, 0.1, 0.5, 1.0, 5.0, 10.0,
];

/// Default size buckets for count-valued histograms (table sizes,
/// per-worker entry counts): decades from 100 to 10M.
pub const SIZE_BUCKETS: &[f64] = &[1e2, 1e3, 1e4, 1e5, 1e6, 1e7];

/// The handle instrumented layers share: one metrics [`Registry`] plus
/// one span log. A pipeline creates a `Recorder` (usually behind an
/// `Arc`), hands the same instance to every layer, and the nested span
/// guards of aggregator → engine → kernel assemble into a single tree.
pub struct Recorder {
    registry: Registry,
    spans: Mutex<span::SpanLog>,
    events: EventJournal,
}

impl Default for Recorder {
    fn default() -> Self {
        Self::new()
    }
}

impl std::fmt::Debug for Recorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Recorder").finish_non_exhaustive()
    }
}

impl Recorder {
    /// A fresh recorder with an empty registry, no spans, and an event
    /// journal of [`DEFAULT_EVENT_CAPACITY`].
    pub fn new() -> Self {
        Self::with_event_capacity(DEFAULT_EVENT_CAPACITY)
    }

    /// A fresh recorder whose event journal retains at most `capacity`
    /// events (oldest evicted first).
    pub fn with_event_capacity(capacity: usize) -> Self {
        Recorder {
            registry: Registry::new(),
            spans: Mutex::new(span::SpanLog::default()),
            events: EventJournal::new(capacity),
        }
    }

    /// The metrics registry.
    pub fn registry(&self) -> &Registry {
        &self.registry
    }

    /// The structured event journal — the in-memory flight recorder.
    pub fn events(&self) -> &EventJournal {
        &self.events
    }

    /// Opens a span as a child of the innermost span still open on this
    /// recorder. Dropping the returned guard closes it. Guards must drop
    /// in LIFO order (the natural shape of lexical scoping); spans are
    /// meant for the single-threaded orchestration path, not for
    /// per-worker timing inside parallel sections.
    pub fn span(&self, name: impl Into<String>) -> Span<'_> {
        span::open(self, &self.spans, name.into())
    }

    /// Snapshot of the completed span trees, in completion order of the
    /// roots. Open spans are not included.
    pub fn spans(&self) -> Vec<SpanNode> {
        self.spans
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .roots
            .clone()
    }

    /// Takes (and clears) the completed span trees.
    pub fn take_spans(&self) -> Vec<SpanNode> {
        std::mem::take(&mut self.spans.lock().unwrap_or_else(|e| e.into_inner()).roots)
    }

    /// Renders the completed span trees as an indented text block with
    /// per-span durations — the `rcctl --trace` output.
    pub fn render_spans(&self) -> String {
        render_span_tree(&self.spans())
    }

    /// Folds the completed span trees into an aggregated
    /// [`ProfileTable`] (call counts, total/self wall time, min/max,
    /// allocation columns).
    pub fn profile(&self) -> ProfileTable {
        ProfileTable::from_spans(&self.spans())
    }

    /// Renders the completed span trees as collapsed-stack lines rooted
    /// at `roleclass`, ready for flamegraph tooling. See
    /// [`collapsed_stacks`].
    pub fn collapsed_spans(&self) -> String {
        collapsed_stacks(&self.spans(), "roleclass")
    }

    pub(crate) fn span_log(&self) -> &Mutex<span::SpanLog> {
        &self.spans
    }
}

/// Opens a span on `rec` when one is attached; with `None` this is a
/// complete no-op (no clock read, no allocation). The standard entry
/// point for instrumented library code:
///
/// ```
/// fn phase(rec: Option<&telemetry::Recorder>) {
///     let _span = telemetry::span(rec, "phase");
///     // ... work ...
/// }
/// phase(None); // free
/// phase(Some(&telemetry::Recorder::new()));
/// ```
pub fn span<'r>(rec: Option<&'r Recorder>, name: impl Into<String>) -> Span<'r> {
    match rec {
        Some(r) => r.span(name),
        None => Span::disabled(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_span_is_a_noop() {
        let s = span(None, "anything");
        drop(s);
    }

    #[test]
    fn spans_nest_into_a_tree() {
        let rec = Recorder::new();
        {
            let _a = rec.span("a");
            {
                let _b = rec.span("b");
                let _c = rec.span("c");
            }
            let _d = rec.span("d");
        }
        let roots = rec.spans();
        assert_eq!(roots.len(), 1);
        assert_eq!(roots[0].name, "a");
        let kids: Vec<&str> = roots[0].children.iter().map(|c| c.name.as_str()).collect();
        assert_eq!(kids, ["b", "d"]);
        assert_eq!(roots[0].children[0].children[0].name, "c");
        // Parents cover their children.
        assert!(roots[0].duration >= roots[0].children[0].duration);
    }

    #[test]
    fn take_spans_clears() {
        let rec = Recorder::new();
        drop(rec.span("x"));
        assert_eq!(rec.take_spans().len(), 1);
        assert!(rec.spans().is_empty());
    }

    #[test]
    fn render_shows_durations() {
        let rec = Recorder::new();
        {
            let _a = rec.span("outer");
            let _b = rec.span("inner");
        }
        let text = rec.render_spans();
        assert!(text.contains("outer"));
        assert!(text.contains("  inner"));
        assert!(text.contains("ms"));
    }

    #[test]
    fn sequential_roots_accumulate() {
        let rec = Recorder::new();
        drop(rec.span("first"));
        drop(rec.span("second"));
        let names: Vec<String> = rec.spans().into_iter().map(|n| n.name).collect();
        assert_eq!(names, ["first", "second"]);
    }
}
