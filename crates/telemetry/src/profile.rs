//! Aggregated span profiles: self-time rollups, allocation columns, and
//! collapsed-stack export for flamegraph tooling.
//!
//! [`SpanNode`] trees record *inclusive* wall time per span. This
//! module folds a forest of them into a [`ProfileTable`] — one row per
//! span name with call count, total/self wall time, min/max, and
//! self-attributed allocation tallies — and renders the same forest as
//! collapsed-stack lines (`roleclass;engine.correlate;correlate.step1
//! 12345`), the interchange format of Brendan Gregg's flamegraph tools
//! (`flamegraph.pl`, `inferno-flamegraph`, speedscope).
//!
//! Self time is inclusive time minus the inclusive time of direct
//! children, clamped at zero; allocation self-attribution follows the
//! same rule. The collapsed value is **self time in microseconds**, so
//! summing every line reproduces the forest's total inclusive time.

use crate::span::SpanNode;
use std::collections::BTreeMap;
use std::fmt::Write as _;
use std::time::Duration;

/// Derived profile series the aggregator emits into the timeseries ring
/// (and mirrors as gauges) every attached cycle, in export (sorted)
/// order. Work-normalized unit costs join stage wall times against the
/// work counters the stages already maintain; the `cycle_alloc_*` pair
/// is the cycle's allocation delta on the orchestration thread. The
/// workspace metric-name lint checks uniqueness and prefixing against
/// this list.
pub const PROFILE_METRIC_NAMES: &[&str] = &[
    "roleclass_profile_correlate_ns_per_candidate",
    "roleclass_profile_correlate_ns_per_eval",
    "roleclass_profile_cycle_alloc_bytes",
    "roleclass_profile_cycle_allocs",
    "roleclass_profile_kernel_ns_per_pair",
    "roleclass_profile_merge_ns_per_pop",
];

/// One aggregated row of a [`ProfileTable`]: every span with this name,
/// folded together.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ProfileEntry {
    /// Span name (`engine.correlate`, `merge.score`, ...).
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Summed inclusive wall time.
    pub total: Duration,
    /// Summed exclusive wall time (inclusive minus direct children).
    pub self_time: Duration,
    /// Fastest single call (inclusive).
    pub min: Duration,
    /// Slowest single call (inclusive).
    pub max: Duration,
    /// Self-attributed bytes allocated (zero without a counting
    /// allocator installed in the binary).
    pub alloc_bytes: u64,
    /// Self-attributed allocation count.
    pub allocs: u64,
}

/// An aggregated profile over a span forest, sorted by self time
/// descending (the flamegraph question: *where does time actually
/// go?*), ties broken by name.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ProfileTable {
    /// The rows, sorted by descending self time then name.
    pub entries: Vec<ProfileEntry>,
}

impl ProfileTable {
    /// Folds a span forest into one row per span name.
    pub fn from_spans(roots: &[SpanNode]) -> Self {
        let mut rows: BTreeMap<String, ProfileEntry> = BTreeMap::new();
        for root in roots {
            root.visit(&mut |n| {
                let e = rows.entry(n.name.clone()).or_insert_with(|| ProfileEntry {
                    name: n.name.clone(),
                    count: 0,
                    total: Duration::ZERO,
                    self_time: Duration::ZERO,
                    min: Duration::MAX,
                    max: Duration::ZERO,
                    alloc_bytes: 0,
                    allocs: 0,
                });
                e.count += 1;
                e.total += n.duration;
                e.self_time += n.self_duration();
                e.min = e.min.min(n.duration);
                e.max = e.max.max(n.duration);
                e.alloc_bytes += n.self_alloc_bytes();
                e.allocs += n.self_allocs();
            });
        }
        let mut entries: Vec<ProfileEntry> = rows.into_values().collect();
        entries.sort_by(|a, b| {
            b.self_time
                .cmp(&a.self_time)
                .then_with(|| a.name.cmp(&b.name))
        });
        ProfileTable { entries }
    }

    /// The row for `name`, if any span carried it.
    pub fn get(&self, name: &str) -> Option<&ProfileEntry> {
        self.entries.iter().find(|e| e.name == name)
    }

    /// Renders the profile as an aligned text table:
    ///
    /// ```text
    /// stage             calls   total ms    self ms     min ms     max ms  alloc bytes   allocs
    /// engine.correlate      3    120.001     20.110     30.000     50.000      1048576      312
    /// ```
    pub fn render(&self) -> String {
        let name_w = self
            .entries
            .iter()
            .map(|e| e.name.chars().count())
            .chain(["stage".len()])
            .max()
            .unwrap_or(5);
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{:<name_w$} {:>6} {:>11} {:>11} {:>10} {:>10} {:>12} {:>8}",
            "stage", "calls", "total ms", "self ms", "min ms", "max ms", "alloc bytes", "allocs"
        );
        for e in &self.entries {
            let _ = writeln!(
                out,
                "{:<name_w$} {:>6} {:>11.3} {:>11.3} {:>10.3} {:>10.3} {:>12} {:>8}",
                e.name,
                e.count,
                e.total.as_secs_f64() * 1e3,
                e.self_time.as_secs_f64() * 1e3,
                e.min.as_secs_f64() * 1e3,
                e.max.as_secs_f64() * 1e3,
                e.alloc_bytes,
                e.allocs,
            );
        }
        out
    }

    /// Renders the profile as a JSON array, one object per row.
    pub fn to_json(&self) -> String {
        let mut out = String::from("[");
        for (i, e) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str("{\"name\":\"");
            crate::events::escape_json_into(&mut out, &e.name);
            let _ = write!(
                out,
                "\",\"count\":{},\"total_secs\":{},\"self_secs\":{},\"min_secs\":{},\
\"max_secs\":{},\"alloc_bytes\":{},\"allocs\":{}}}",
                e.count,
                crate::registry::fmt_f64(e.total.as_secs_f64()),
                crate::registry::fmt_f64(e.self_time.as_secs_f64()),
                crate::registry::fmt_f64(e.min.as_secs_f64()),
                crate::registry::fmt_f64(e.max.as_secs_f64()),
                e.alloc_bytes,
                e.allocs,
            );
        }
        out.push(']');
        out
    }
}

/// Escapes one stack frame for the collapsed format. `;` (the frame
/// separator), space (the value separator), and `\` (the escape lead-in)
/// are backslash-escaped; control characters — which would break the
/// line-oriented format — become `\u{XXXX}`. Everything else, including
/// non-ASCII unicode, passes through verbatim (the format is plain
/// UTF-8 text).
fn escape_frame_into(out: &mut String, frame: &str) {
    for c in frame.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            ';' => out.push_str("\\;"),
            ' ' => out.push_str("\\ "),
            c if c.is_control() => {
                let _ = write!(out, "\\u{{{:x}}}", c as u32);
            }
            c => out.push(c),
        }
    }
}

/// Renders a span forest as collapsed-stack lines, one per distinct
/// root-to-span path, with **self time in microseconds** as the value:
///
/// ```text
/// roleclass;engine.run_window;engine.correlate;correlate.step1 12345
/// ```
///
/// `root_frame` (conventionally `"roleclass"`) prefixes every stack so
/// multiple trees share one flamegraph base. Identical paths from
/// repeated spans are summed. Every span produces a line (zero values
/// included, which flamegraph tools accept), so the output is a
/// lossless self-time account of the forest. Frames are escaped by
/// [`escape_frame_into`]'s rules and parse back with
/// [`parse_collapsed_line`].
pub fn collapsed_stacks(roots: &[SpanNode], root_frame: &str) -> String {
    fn walk(n: &SpanNode, path: &mut Vec<String>, agg: &mut BTreeMap<Vec<String>, u64>) {
        path.push(n.name.clone());
        let micros = n.self_duration().as_micros().min(u64::MAX as u128) as u64;
        let slot = agg.entry(path.clone()).or_insert(0);
        *slot = slot.saturating_add(micros);
        for c in &n.children {
            walk(c, path, agg);
        }
        path.pop();
    }
    let mut agg: BTreeMap<Vec<String>, u64> = BTreeMap::new();
    for root in roots {
        walk(root, &mut vec![root_frame.to_string()], &mut agg);
    }
    let mut out = String::new();
    for (path, micros) in &agg {
        for (i, frame) in path.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            escape_frame_into(&mut out, frame);
        }
        let _ = writeln!(out, " {micros}");
    }
    out
}

/// Parses one collapsed-stack line back into `(frames, value)`,
/// reversing [`collapsed_stacks`]' escaping. Returns `None` on a
/// malformed line (no value, non-numeric value, dangling escape, bad
/// `\u{...}`): the strictness is what the round-trip property tests
/// lean on.
pub fn parse_collapsed_line(line: &str) -> Option<(Vec<String>, u64)> {
    // The value separator is the last *unescaped* space. Scan once,
    // tracking escape state, so frame-embedded `\ ` never splits.
    let chars: Vec<char> = line.chars().collect();
    let mut split = None;
    let mut escaped = false;
    for (i, &c) in chars.iter().enumerate() {
        if escaped {
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == ' ' {
            split = Some(i);
        }
    }
    if escaped {
        return None; // dangling escape at end of line
    }
    let split = split?;
    let value: u64 = chars[split + 1..].iter().collect::<String>().parse().ok()?;

    let mut frames = Vec::new();
    let mut cur = String::new();
    let mut it = chars[..split].iter().copied().peekable();
    while let Some(c) = it.next() {
        match c {
            '\\' => match it.next()? {
                '\\' => cur.push('\\'),
                ';' => cur.push(';'),
                ' ' => cur.push(' '),
                'u' => {
                    if it.next()? != '{' {
                        return None;
                    }
                    let mut hex = String::new();
                    loop {
                        match it.next()? {
                            '}' => break,
                            h => hex.push(h),
                        }
                    }
                    let code = u32::from_str_radix(&hex, 16).ok()?;
                    cur.push(char::from_u32(code)?);
                }
                _ => return None,
            },
            ';' => frames.push(std::mem::take(&mut cur)),
            c => cur.push(c),
        }
    }
    frames.push(cur);
    Some((frames, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::span::tests::node;

    fn forest() -> Vec<SpanNode> {
        vec![node(
            "engine.run_window",
            100,
            vec![
                node("engine.classify", 60, vec![node("engine.form", 40, vec![])]),
                node("engine.correlate", 30, vec![]),
            ],
        )]
    }

    #[test]
    fn table_rolls_up_self_time() {
        let t = ProfileTable::from_spans(&forest());
        let run = t.get("engine.run_window").unwrap();
        assert_eq!(run.count, 1);
        assert_eq!(run.total, Duration::from_millis(100));
        assert_eq!(run.self_time, Duration::from_millis(10)); // 100 - 60 - 30
        let classify = t.get("engine.classify").unwrap();
        assert_eq!(classify.self_time, Duration::from_millis(20)); // 60 - 40
                                                                   // Leaves: self == total.
        assert_eq!(
            t.get("engine.form").unwrap().self_time,
            Duration::from_millis(40)
        );
        // Self times sum to the forest's inclusive total.
        let sum: Duration = t.entries.iter().map(|e| e.self_time).sum();
        assert_eq!(sum, Duration::from_millis(100));
    }

    #[test]
    fn table_aggregates_repeated_names() {
        let roots = vec![node("w", 10, vec![]), node("w", 30, vec![])];
        let t = ProfileTable::from_spans(&roots);
        let w = t.get("w").unwrap();
        assert_eq!(w.count, 2);
        assert_eq!(w.total, Duration::from_millis(40));
        assert_eq!(w.min, Duration::from_millis(10));
        assert_eq!(w.max, Duration::from_millis(30));
    }

    #[test]
    fn table_sorted_by_self_time_desc() {
        let t = ProfileTable::from_spans(&forest());
        let selfs: Vec<Duration> = t.entries.iter().map(|e| e.self_time).collect();
        let mut sorted = selfs.clone();
        sorted.sort_by(|a, b| b.cmp(a));
        assert_eq!(selfs, sorted);
    }

    #[test]
    fn render_has_alloc_columns() {
        let text = ProfileTable::from_spans(&forest()).render();
        let header = text.lines().next().unwrap();
        assert!(header.contains("self ms"));
        assert!(header.contains("alloc bytes"));
        assert!(header.contains("allocs"));
        assert_eq!(text.lines().count(), 1 + 4);
    }

    #[test]
    fn json_rows_carry_all_fields() {
        let json = ProfileTable::from_spans(&forest()).to_json();
        assert!(json.starts_with('['));
        assert!(json.contains("\"name\":\"engine.form\""));
        assert!(json.contains("\"self_secs\":0.04"));
        assert!(json.contains("\"alloc_bytes\":0"));
    }

    #[test]
    fn collapsed_lines_use_self_micros_and_full_paths() {
        let text = collapsed_stacks(&forest(), "roleclass");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines.contains(&"roleclass;engine.run_window;engine.classify;engine.form 40000"));
        assert!(lines.contains(&"roleclass;engine.run_window;engine.correlate 30000"));
        assert!(lines.contains(&"roleclass;engine.run_window 10000"));
        // Values sum to the forest's inclusive total, in micros.
        let sum: u64 = lines
            .iter()
            .map(|l| l.rsplit(' ').next().unwrap().parse::<u64>().unwrap())
            .sum();
        assert_eq!(sum, 100_000);
    }

    #[test]
    fn collapsed_aggregates_identical_paths() {
        let roots = vec![
            node("w", 10, vec![node("x", 4, vec![])]),
            node("w", 20, vec![node("x", 6, vec![])]),
        ];
        let text = collapsed_stacks(&roots, "r");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines.contains(&"r;w 20000"));
        assert!(lines.contains(&"r;w;x 10000"));
    }

    #[test]
    fn escaping_round_trips_hostile_names() {
        let hostile = [
            "a;b",
            "with space",
            "back\\slash",
            "tab\there",
            "new\nline",
            "unicode-😀-é",
            "",
            "; \\ mix;; ",
        ];
        let roots: Vec<SpanNode> = hostile.iter().map(|n| node(n, 1, vec![])).collect();
        let text = collapsed_stacks(&roots, "root");
        for line in text.lines() {
            let (frames, value) = parse_collapsed_line(line).expect(line);
            assert_eq!(frames[0], "root");
            assert_eq!(frames.len(), 2);
            assert!(hostile.contains(&frames[1].as_str()), "{:?}", frames[1]);
            assert_eq!(value, 1000);
        }
        assert_eq!(text.lines().count(), hostile.len());
    }

    #[test]
    fn parse_rejects_malformed_lines() {
        assert_eq!(parse_collapsed_line("no-value"), None);
        assert_eq!(parse_collapsed_line("a;b notanumber"), None);
        assert_eq!(parse_collapsed_line("dangling\\ 5"), None); // escaped space eats the separator
        assert_eq!(parse_collapsed_line("bad\\u{zz} 5"), None);
        assert_eq!(parse_collapsed_line("trail\\"), None);
        assert!(parse_collapsed_line("a;b 5").is_some());
    }
}
