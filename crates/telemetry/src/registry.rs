//! The metrics registry: named counters, gauges, and fixed-bucket
//! histograms, exported as Prometheus text or a JSON snapshot.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are `Arc`-backed
//! atomics: fetch them once (the only locking point) and update from hot
//! paths lock-free. Registering the same name twice returns the same
//! underlying metric, so independent layers can share a registry without
//! coordination — but a name registered as one kind and requested as
//! another is a programming error and panics.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A monotonically increasing `u64` metric.
#[derive(Clone, Debug, Default)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds 1.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable signed instantaneous value.
#[derive(Clone, Debug, Default)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// Sets the value.
    #[inline]
    pub fn set(&self, v: i64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Adds `d` (may be negative).
    #[inline]
    pub fn add(&self, d: i64) {
        self.0.fetch_add(d, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

#[derive(Debug)]
struct HistogramInner {
    /// Upper bounds of the finite buckets, strictly increasing; an
    /// implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries,
    /// non-cumulative; export cumulates).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values as `f64` bits, updated by CAS.
    sum_bits: AtomicU64,
}

/// A fixed-bucket histogram of `f64` observations (durations in
/// seconds, sizes, ...). Buckets are chosen at first registration;
/// see [`crate::DURATION_BUCKETS`] and [`crate::SIZE_BUCKETS`].
#[derive(Clone, Debug)]
pub struct Histogram(Arc<HistogramInner>);

impl Histogram {
    fn new(bounds: &[f64]) -> Self {
        debug_assert!(
            bounds.windows(2).all(|w| w[0] < w[1]),
            "histogram bounds must be strictly increasing"
        );
        Histogram(Arc::new(HistogramInner {
            bounds: bounds.to_vec(),
            buckets: (0..=bounds.len()).map(|_| AtomicU64::new(0)).collect(),
            count: AtomicU64::new(0),
            sum_bits: AtomicU64::new(0f64.to_bits()),
        }))
    }

    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let i = self.0.bounds.partition_point(|&b| v > b);
        self.0.buckets[i].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        let mut cur = self.0.sum_bits.load(Ordering::Relaxed);
        loop {
            let next = (f64::from_bits(cur) + v).to_bits();
            match self.0.sum_bits.compare_exchange_weak(
                cur,
                next,
                Ordering::Relaxed,
                Ordering::Relaxed,
            ) {
                Ok(_) => break,
                Err(seen) => cur = seen,
            }
        }
    }

    /// Records a duration in seconds.
    pub fn observe_duration(&self, d: std::time::Duration) {
        self.observe(d.as_secs_f64());
    }

    /// Total observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }

    /// `(upper_bound, cumulative_count)` per bucket, ending with the
    /// `+Inf` bucket reported as `f64::INFINITY`.
    pub fn cumulative_buckets(&self) -> Vec<(f64, u64)> {
        let mut acc = 0u64;
        let mut out = Vec::with_capacity(self.0.buckets.len());
        for (i, b) in self.0.buckets.iter().enumerate() {
            acc += b.load(Ordering::Relaxed);
            let le = self.0.bounds.get(i).copied().unwrap_or(f64::INFINITY);
            out.push((le, acc));
        }
        out
    }
}

#[derive(Clone, Debug)]
enum Metric {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
        }
    }
}

/// A global-free, thread-safe collection of named metrics.
///
/// `BTreeMap`-backed, so every export walks names in sorted order —
/// byte-stable output run over run (pinned by the golden test).
#[derive(Debug, Default)]
pub struct Registry {
    metrics: Mutex<BTreeMap<String, Metric>>,
    help: Mutex<BTreeMap<String, String>>,
}

/// Returns `true` for names matching the workspace convention
/// `[a-z][a-z0-9_]*` (a strict subset of the Prometheus charset).
pub(crate) fn valid_name(name: &str) -> bool {
    let mut chars = name.chars();
    chars.next().is_some_and(|c| c.is_ascii_lowercase())
        && chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn get_or_insert<T>(
        &self,
        name: &str,
        make: impl FnOnce() -> Metric,
        unwrap: impl FnOnce(&Metric) -> Option<T>,
    ) -> T {
        assert!(
            valid_name(name),
            "invalid metric name {name:?}: expected [a-z][a-z0-9_]*"
        );
        let mut metrics = self.metrics.lock().unwrap_or_else(|e| e.into_inner());
        let m = metrics.entry(name.to_string()).or_insert_with(make);
        unwrap(m).unwrap_or_else(|| panic!("metric {name:?} already registered as a {}", m.kind()))
    }

    /// The counter named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics on an invalid name or if `name` is already a gauge or
    /// histogram.
    pub fn counter(&self, name: &str) -> Counter {
        self.get_or_insert(
            name,
            || Metric::Counter(Counter::default()),
            |m| match m {
                Metric::Counter(c) => Some(c.clone()),
                _ => None,
            },
        )
    }

    /// The gauge named `name`, registering it on first use.
    ///
    /// # Panics
    ///
    /// Panics on an invalid name or kind mismatch.
    pub fn gauge(&self, name: &str) -> Gauge {
        self.get_or_insert(
            name,
            || Metric::Gauge(Gauge::default()),
            |m| match m {
                Metric::Gauge(g) => Some(g.clone()),
                _ => None,
            },
        )
    }

    /// The histogram named `name`, registering it with `bounds` on first
    /// use (later calls reuse the first registration's buckets).
    ///
    /// # Panics
    ///
    /// Panics on an invalid name or kind mismatch.
    pub fn histogram(&self, name: &str, bounds: &[f64]) -> Histogram {
        self.get_or_insert(
            name,
            || Metric::Histogram(Histogram::new(bounds)),
            |m| match m {
                Metric::Histogram(h) => Some(h.clone()),
                _ => None,
            },
        )
    }

    /// Attaches Prometheus `# HELP` text to `name`. Optional: metrics
    /// without help text export exactly as before (no `# HELP` line), so
    /// existing byte-pinned output is unaffected until a caller opts in.
    pub fn set_help(&self, name: &str, help: &str) {
        assert!(
            valid_name(name),
            "invalid metric name {name:?}: expected [a-z][a-z0-9_]*"
        );
        self.help
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), help.to_string());
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    fn snapshot(&self) -> BTreeMap<String, Metric> {
        self.metrics
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Prometheus text exposition of every metric, in sorted name order:
    /// a `# TYPE` line per metric, `_bucket`/`_sum`/`_count` series for
    /// histograms.
    pub fn prometheus_text(&self) -> String {
        use std::fmt::Write as _;
        let help = self.help.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let mut out = String::new();
        for (name, metric) in self.snapshot() {
            if let Some(h) = help.get(&name) {
                let _ = writeln!(out, "# HELP {name} {}", escape_help_text(h));
            }
            let _ = writeln!(out, "# TYPE {name} {}", metric.kind());
            match metric {
                Metric::Counter(c) => {
                    let _ = writeln!(out, "{name} {}", c.get());
                }
                Metric::Gauge(g) => {
                    let _ = writeln!(out, "{name} {}", g.get());
                }
                Metric::Histogram(h) => {
                    for (le, cum) in h.cumulative_buckets() {
                        let le = if le.is_infinite() {
                            "+Inf".to_string()
                        } else {
                            format!("{le}")
                        };
                        let _ = writeln!(
                            out,
                            "{name}_bucket{{le=\"{}\"}} {cum}",
                            escape_label_value(&le)
                        );
                    }
                    let _ = writeln!(out, "{name}_sum {}", h.sum());
                    let _ = writeln!(out, "{name}_count {}", h.count());
                }
            }
        }
        out
    }

    /// JSON snapshot of every metric, grouped by kind, names sorted:
    ///
    /// ```json
    /// {"counters":{...},"gauges":{...},
    ///  "histograms":{"n":{"count":2,"sum":0.5,
    ///                     "buckets":[{"le":0.1,"count":1},
    ///                                {"le":"+Inf","count":2}]}}}
    /// ```
    ///
    /// Hand-rolled (this crate has no serde): names are charset-checked
    /// at registration, so no escaping is needed.
    pub fn json_snapshot(&self) -> String {
        use std::fmt::Write as _;
        let snap = self.snapshot();
        let mut counters = String::new();
        let mut gauges = String::new();
        let mut hists = String::new();
        for (name, metric) in &snap {
            match metric {
                Metric::Counter(c) => {
                    let _ = write!(
                        counters,
                        "{}\"{name}\":{}",
                        if counters.is_empty() { "" } else { "," },
                        c.get()
                    );
                }
                Metric::Gauge(g) => {
                    let _ = write!(
                        gauges,
                        "{}\"{name}\":{}",
                        if gauges.is_empty() { "" } else { "," },
                        g.get()
                    );
                }
                Metric::Histogram(h) => {
                    let mut buckets = String::new();
                    for (le, cum) in h.cumulative_buckets() {
                        let le = if le.is_infinite() {
                            "\"+Inf\"".to_string()
                        } else {
                            fmt_f64(le)
                        };
                        let _ = write!(
                            buckets,
                            "{}{{\"le\":{le},\"count\":{cum}}}",
                            if buckets.is_empty() { "" } else { "," },
                        );
                    }
                    let _ = write!(
                        hists,
                        "{}\"{name}\":{{\"count\":{},\"sum\":{},\"buckets\":[{buckets}]}}",
                        if hists.is_empty() { "" } else { "," },
                        h.count(),
                        fmt_f64(h.sum()),
                    );
                }
            }
        }
        format!(
            "{{\"counters\":{{{counters}}},\"gauges\":{{{gauges}}},\"histograms\":{{{hists}}}}}"
        )
    }
}

/// Escapes metric help text per the Prometheus exposition format:
/// backslash and line feed only (`\\` and `\n`).
fn escape_help_text(s: &str) -> String {
    s.replace('\\', "\\\\").replace('\n', "\\n")
}

/// Escapes a label value per the Prometheus exposition format:
/// backslash, double quote, and line feed. Our only label today is `le`
/// (numeric, never escaped in practice), but the export goes through
/// this unconditionally so new labels can't silently ship unescaped.
fn escape_label_value(s: &str) -> String {
    s.replace('\\', "\\\\")
        .replace('"', "\\\"")
        .replace('\n', "\\n")
}

/// Formats an `f64` so the output is valid JSON and stable: plain `{}`
/// display, with a `.0` appended to integral values so they stay floats
/// on the way back in.
pub(crate) fn fmt_f64(v: f64) -> String {
    let s = format!("{v}");
    if s.contains(['.', 'e', 'E']) {
        s
    } else {
        format!("{s}.0")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_round_trip() {
        let reg = Registry::new();
        let c = reg.counter("test_counter_total");
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
        // Re-registering returns the same underlying metric.
        assert_eq!(reg.counter("test_counter_total").get(), 5);
    }

    #[test]
    fn gauge_set_and_add() {
        let reg = Registry::new();
        let g = reg.gauge("test_gauge");
        g.set(10);
        g.add(-3);
        assert_eq!(g.get(), 7);
    }

    #[test]
    fn histogram_buckets_cumulate() {
        let reg = Registry::new();
        let h = reg.histogram("test_hist", &[1.0, 10.0]);
        for v in [0.5, 1.0, 2.0, 20.0] {
            h.observe(v);
        }
        // le="1" catches 0.5 and the boundary value 1.0.
        assert_eq!(
            h.cumulative_buckets(),
            vec![(1.0, 2), (10.0, 3), (f64::INFINITY, 4)]
        );
        assert_eq!(h.count(), 4);
        assert!((h.sum() - 23.5).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "invalid metric name")]
    fn invalid_names_are_rejected() {
        Registry::new().counter("Bad-Name");
    }

    #[test]
    #[should_panic(expected = "already registered as a counter")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("name_taken");
        reg.gauge("name_taken");
    }

    #[test]
    fn name_charset() {
        assert!(valid_name("roleclass_kernel_builds_total"));
        assert!(valid_name("a1_b2"));
        assert!(!valid_name(""));
        assert!(!valid_name("1abc"));
        assert!(!valid_name("_abc"));
        assert!(!valid_name("camelCase"));
        assert!(!valid_name("with-dash"));
        assert!(!valid_name("with space"));
    }

    #[test]
    fn json_is_stable_and_sorted() {
        let reg = Registry::new();
        reg.counter("b_total").inc();
        reg.counter("a_total");
        reg.gauge("z_gauge").set(-2);
        let json = reg.json_snapshot();
        assert!(json.find("\"a_total\"").unwrap() < json.find("\"b_total\"").unwrap());
        assert!(json.contains("\"z_gauge\":-2"));
        assert_eq!(json, reg.json_snapshot());
    }

    #[test]
    fn help_lines_appear_only_when_set() {
        let reg = Registry::new();
        reg.counter("with_help_total").inc();
        reg.counter("without_help_total");
        reg.set_help("with_help_total", "counts things\nacross \\ lines");
        let text = reg.prometheus_text();
        assert!(text.contains("# HELP with_help_total counts things\\nacross \\\\ lines\n"));
        assert!(!text.contains("# HELP without_help_total"));
        // HELP precedes TYPE for the annotated metric.
        assert!(
            text.find("# HELP with_help_total").unwrap()
                < text.find("# TYPE with_help_total").unwrap()
        );
    }

    #[test]
    fn label_value_escaping() {
        assert_eq!(escape_label_value("+Inf"), "+Inf");
        assert_eq!(escape_label_value("0.5"), "0.5");
        assert_eq!(escape_label_value("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape_help_text("a\\b\nc"), "a\\\\b\\nc");
    }

    #[test]
    fn fmt_f64_keeps_floats_floaty() {
        assert_eq!(fmt_f64(1.0), "1.0");
        assert_eq!(fmt_f64(0.25), "0.25");
        assert_eq!(fmt_f64(0.0), "0.0");
        assert_eq!(fmt_f64(1e-7), "0.0000001");
    }
}
