//! Hierarchical spans: RAII timer guards that assemble into a tree.

use crate::Recorder;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One completed span: a name, a monotonic duration, allocation
/// tallies, and the spans that completed inside it.
#[derive(Clone, Debug)]
pub struct SpanNode {
    /// The span's name (dot-separated taxonomy, e.g. `engine.form`).
    pub name: String,
    /// Wall-clock time between open and close.
    pub duration: Duration,
    /// Bytes allocated on the opening thread while the span was open
    /// (inclusive of children). Zero unless the binary installs
    /// [`crate::CountingAlloc`].
    pub alloc_bytes: u64,
    /// Allocations on the opening thread while the span was open
    /// (inclusive of children). Zero without a counting allocator.
    pub allocs: u64,
    /// Child spans, in completion order.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Duration in seconds.
    pub fn secs(&self) -> f64 {
        self.duration.as_secs_f64()
    }

    /// Exclusive (self) time: the duration minus the time covered by
    /// direct children, clamped at zero against clock skew.
    pub fn self_duration(&self) -> Duration {
        let children: Duration = self.children.iter().map(|c| c.duration).sum();
        self.duration.saturating_sub(children)
    }

    /// Exclusive time in seconds.
    pub fn self_secs(&self) -> f64 {
        self.self_duration().as_secs_f64()
    }

    /// Bytes allocated in this span but not in any child.
    pub fn self_alloc_bytes(&self) -> u64 {
        let children: u64 = self.children.iter().map(|c| c.alloc_bytes).sum();
        self.alloc_bytes.saturating_sub(children)
    }

    /// Allocations made in this span but not in any child.
    pub fn self_allocs(&self) -> u64 {
        let children: u64 = self.children.iter().map(|c| c.allocs).sum();
        self.allocs.saturating_sub(children)
    }

    /// Depth-first walk over this node and all descendants.
    pub fn visit(&self, f: &mut impl FnMut(&SpanNode)) {
        f(self);
        for c in &self.children {
            c.visit(f);
        }
    }
}

/// An open span frame on the recorder's stack.
#[derive(Debug)]
struct Frame {
    name: String,
    start: Instant,
    /// Thread-local allocation tallies at open; the close computes the
    /// inclusive delta. Plain zeros when no counting allocator is
    /// installed, so the subtraction stays a harmless no-op.
    start_alloc: (u64, u64),
    children: Vec<SpanNode>,
}

/// The per-recorder span state: a stack of open frames plus the
/// completed root spans.
#[derive(Debug, Default)]
pub(crate) struct SpanLog {
    stack: Vec<Frame>,
    pub(crate) roots: Vec<SpanNode>,
}

/// RAII guard for an open span; dropping it closes the span. Obtained
/// from [`Recorder::span`] or [`crate::span`]; the disabled variant
/// (from a `None` recorder) does nothing on construction or drop.
#[must_use = "a span measures the scope it lives in; bind it to a variable"]
pub struct Span<'r> {
    rec: Option<&'r Recorder>,
}

impl Span<'_> {
    pub(crate) fn disabled() -> Self {
        Span { rec: None }
    }
}

pub(crate) fn open<'r>(rec: &'r Recorder, log: &Mutex<SpanLog>, name: String) -> Span<'r> {
    let mut log = log.lock().unwrap_or_else(|e| e.into_inner());
    log.stack.push(Frame {
        name,
        start: Instant::now(),
        start_alloc: crate::alloc::alloc_counters(),
        children: Vec::new(),
    });
    Span { rec: Some(rec) }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        let Some(rec) = self.rec else { return };
        let mut log = rec.span_log().lock().unwrap_or_else(|e| e.into_inner());
        let Some(frame) = log.stack.pop() else { return };
        let (bytes_now, allocs_now) = crate::alloc::alloc_counters();
        let node = SpanNode {
            duration: frame.start.elapsed(),
            name: frame.name,
            alloc_bytes: bytes_now.wrapping_sub(frame.start_alloc.0),
            allocs: allocs_now.wrapping_sub(frame.start_alloc.1),
            children: frame.children,
        };
        match log.stack.last_mut() {
            Some(parent) => parent.children.push(node),
            None => log.roots.push(node),
        }
    }
}

/// Renders span trees as indented text, one line per span with its
/// duration in milliseconds:
///
/// ```text
/// aggregator.run_cycle                       12.402ms
///   engine.run_window                        11.016ms
///     engine.form                             8.933ms
/// ```
pub fn render_span_tree(roots: &[SpanNode]) -> String {
    fn max_label(nodes: &[SpanNode], depth: usize, acc: &mut usize) {
        for n in nodes {
            *acc = (*acc).max(2 * depth + n.name.len());
            max_label(&n.children, depth + 1, acc);
        }
    }
    fn line(out: &mut String, n: &SpanNode, depth: usize, width: usize) {
        use std::fmt::Write as _;
        let label = format!("{:indent$}{}", "", n.name, indent = 2 * depth);
        let _ = writeln!(
            out,
            "{label:<width$} {:>10.3}ms",
            n.duration.as_secs_f64() * 1e3
        );
        for c in &n.children {
            line(out, c, depth + 1, width);
        }
    }
    let mut width = 0;
    max_label(roots, 0, &mut width);
    let mut out = String::new();
    for n in roots {
        line(&mut out, n, 0, width);
    }
    out
}

/// Renders span trees as a JSON array, preserving nesting:
///
/// ```json
/// [{"name":"engine.run_window","secs":0.011,"children":[...]}]
/// ```
///
/// Span names are free-form strings (dots allowed), so they go through
/// full JSON escaping.
pub fn span_tree_json(roots: &[SpanNode]) -> String {
    fn node(out: &mut String, n: &SpanNode) {
        out.push_str("{\"name\":\"");
        crate::events::escape_json_into(out, &n.name);
        out.push_str("\",\"secs\":");
        out.push_str(&crate::registry::fmt_f64(n.secs()));
        out.push_str(&format!(
            ",\"alloc_bytes\":{},\"allocs\":{}",
            n.alloc_bytes, n.allocs
        ));
        out.push_str(",\"children\":");
        list(out, &n.children);
        out.push('}');
    }
    fn list(out: &mut String, nodes: &[SpanNode]) {
        out.push('[');
        for (i, n) in nodes.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            node(out, n);
        }
        out.push(']');
    }
    let mut out = String::new();
    list(&mut out, roots);
    out
}

#[cfg(test)]
pub(crate) mod tests {
    use super::*;

    /// Test-only constructor: a node with zero alloc tallies.
    pub(crate) fn node(name: &str, ms: u64, children: Vec<SpanNode>) -> SpanNode {
        SpanNode {
            name: name.into(),
            duration: Duration::from_millis(ms),
            alloc_bytes: 0,
            allocs: 0,
            children,
        }
    }

    #[test]
    fn visit_walks_depth_first() {
        let tree = node("a", 3, vec![node("b", 1, vec![]), node("c", 1, vec![])]);
        let mut names = Vec::new();
        tree.visit(&mut |n| names.push(n.name.clone()));
        assert_eq!(names, ["a", "b", "c"]);
        assert!(tree.secs() > 0.0);
    }

    #[test]
    fn self_time_excludes_children() {
        let tree = node("a", 10, vec![node("b", 3, vec![]), node("c", 4, vec![])]);
        assert_eq!(tree.self_duration(), Duration::from_millis(3));
        // Clock skew (children summing past the parent) clamps to zero.
        let skewed = node("a", 2, vec![node("b", 3, vec![])]);
        assert_eq!(skewed.self_duration(), Duration::ZERO);
    }

    #[test]
    fn self_allocs_exclude_children() {
        let mut tree = node("a", 10, vec![node("b", 3, vec![])]);
        tree.alloc_bytes = 100;
        tree.allocs = 7;
        tree.children[0].alloc_bytes = 60;
        tree.children[0].allocs = 5;
        assert_eq!(tree.self_alloc_bytes(), 40);
        assert_eq!(tree.self_allocs(), 2);
    }

    #[test]
    fn json_preserves_nesting_and_escapes() {
        let mut outer = node("outer \"q\"", 2, vec![node("inner", 1, vec![])]);
        outer.alloc_bytes = 9;
        outer.allocs = 2;
        let roots = vec![outer];
        let json = span_tree_json(&roots);
        assert!(json.starts_with("[{\"name\":\"outer \\\"q\\\"\",\"secs\":0.002"));
        assert!(json.contains("\"alloc_bytes\":9,\"allocs\":2"));
        assert!(json.contains("\"children\":[{\"name\":\"inner\""));
        assert!(json.ends_with("]"));
        assert_eq!(span_tree_json(&[]), "[]");
    }

    #[test]
    fn render_aligns_columns() {
        let roots = vec![node(
            "root",
            1,
            vec![node("leaf_with_longer_name", 1, vec![])],
        )];
        let text = render_span_tree(&roots);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("root"));
        assert!(lines[1].starts_with("  leaf_with_longer_name"));
        assert!(lines[0].ends_with("ms"));
        // Label column is padded to a shared width, so the duration
        // columns line up and both lines have identical length.
        assert_eq!(lines[0].len(), lines[1].len());
    }
}
