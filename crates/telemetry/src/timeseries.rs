//! The metric timeseries: a bounded per-window ring of named metric
//! snapshots.
//!
//! The [`Registry`](crate::Registry) answers "what is the value *now*";
//! the [`EventJournal`](crate::EventJournal) answers "what happened, one
//! decision at a time". Neither answers "how did this window-level
//! quantity evolve" without replaying everything. A [`TimeseriesRing`]
//! fills that gap: after every cycle the aggregator appends one
//! [`MetricFrame`] — a timestamped, sequenced set of `(name, value)`
//! pairs keyed by the window index it describes — and the ring retains
//! the most recent `capacity` frames, evicting oldest-first, so a
//! long-running pipeline keeps a bounded trail of per-window stability
//! and throughput figures.
//!
//! Same discipline as the event journal: zero dependencies, one short
//! mutex acquisition per append, sequence numbers dense and assigned
//! inside the same critical section as ring order, and names following
//! the `roleclass_<layer>_<name>` convention so the workspace
//! `metric_names` lint covers them.
//!
//! Export is JSONL — one self-contained JSON object per line:
//!
//! ```text
//! {"seq":0,"ts_ns":1234,"window":7,"values":{"roleclass_stability_backbone_mean":0.96}}
//! ```

use std::collections::VecDeque;
use std::sync::Mutex;
use std::time::Instant;

/// Default frame capacity of a [`TimeseriesRing`]: one frame per window,
/// so this covers weeks of hour-long windows at well under a megabyte.
pub const DEFAULT_TIMESERIES_CAPACITY: usize = 4_096;

/// One per-window snapshot of named metric values.
#[derive(Clone, Debug, PartialEq)]
pub struct MetricFrame {
    /// Sequence number, dense and strictly increasing per ring.
    pub seq: u64,
    /// Nanoseconds since ring creation (monotonic clock).
    pub ts_ns: u64,
    /// The window index this frame describes (the aggregator's cycle
    /// counter), so frames stay attributable after eviction.
    pub window: u64,
    /// Named values, in emission order. Names follow the
    /// `roleclass_<layer>_<name>` metric convention.
    pub values: Vec<(&'static str, f64)>,
}

impl MetricFrame {
    /// Renders the frame as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(64 + self.values.len() * 32);
        self.write_json(&mut out);
        out
    }

    /// Appends the JSON rendering of the frame to `out`.
    pub fn write_json(&self, out: &mut String) {
        use std::fmt::Write as _;
        let _ = write!(
            out,
            "{{\"seq\":{},\"ts_ns\":{},\"window\":{},\"values\":{{",
            self.seq, self.ts_ns, self.window
        );
        for (i, (name, value)) in self.values.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            let _ = write!(out, "\"{name}\":");
            out.push_str(&crate::registry::fmt_f64(*value));
        }
        out.push_str("}}");
    }
}

/// The mutable ring state, all under one mutex so sequence numbers, ring
/// order, and the drop counter can never disagree.
#[derive(Debug, Default)]
struct RingState {
    ring: VecDeque<MetricFrame>,
    next_seq: u64,
    dropped: u64,
}

/// A bounded ring of [`MetricFrame`]s — the per-window timeseries.
///
/// Oldest frames are evicted first once `capacity` is reached;
/// [`TimeseriesRing::dropped`] counts evictions so consumers can tell a
/// short history from a truncated one.
#[derive(Debug)]
pub struct TimeseriesRing {
    epoch: Instant,
    capacity: usize,
    state: Mutex<RingState>,
}

impl TimeseriesRing {
    /// A ring holding at most `capacity` frames (min 1).
    pub fn new(capacity: usize) -> Self {
        TimeseriesRing {
            epoch: Instant::now(),
            capacity: capacity.max(1),
            state: Mutex::new(RingState::default()),
        }
    }

    /// Appends one frame for `window`, stamping it with the ring's
    /// monotonic clock and the next sequence number. Evicts the oldest
    /// frame when full.
    pub fn record(&self, window: u64, values: Vec<(&'static str, f64)>) {
        debug_assert!(
            values.iter().all(|(n, _)| crate::registry::valid_name(n)),
            "timeseries value names follow the metric convention: [a-z][a-z0-9_]*"
        );
        let ts_ns = u64::try_from(self.epoch.elapsed().as_nanos()).unwrap_or(u64::MAX);
        let mut st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let seq = st.next_seq;
        st.next_seq += 1;
        st.ring.push_back(MetricFrame {
            seq,
            ts_ns,
            window,
            values,
        });
        if st.ring.len() > self.capacity {
            st.ring.pop_front();
            st.dropped += 1;
        }
    }

    /// Maximum number of retained frames.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Number of currently retained frames.
    pub fn len(&self) -> usize {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .ring
            .len()
    }

    /// `true` when nothing has been recorded (or everything was taken).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Frames evicted by overflow so far.
    pub fn dropped(&self) -> u64 {
        self.state.lock().unwrap_or_else(|e| e.into_inner()).dropped
    }

    /// Snapshot of the retained frames, oldest first.
    pub fn snapshot(&self) -> Vec<MetricFrame> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .ring
            .iter()
            .cloned()
            .collect()
    }

    /// Takes (and clears) the retained frames, oldest first. Sequence
    /// numbering continues where it left off.
    pub fn take(&self) -> Vec<MetricFrame> {
        std::mem::take(&mut self.state.lock().unwrap_or_else(|e| e.into_inner()).ring).into()
    }

    /// The most recent `n` retained frames, oldest of those first.
    pub fn tail(&self, n: usize) -> Vec<MetricFrame> {
        let st = self.state.lock().unwrap_or_else(|e| e.into_inner());
        let skip = st.ring.len().saturating_sub(n);
        st.ring.iter().skip(skip).cloned().collect()
    }

    /// Renders the retained frames as JSONL, one frame per line, oldest
    /// first. Empty ring renders as the empty string.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for frame in self.snapshot() {
            frame.write_json(&mut out);
            out.push('\n');
        }
        out
    }
}

impl Default for TimeseriesRing {
    fn default() -> Self {
        TimeseriesRing::new(DEFAULT_TIMESERIES_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_in_order_with_dense_seq() {
        let r = TimeseriesRing::new(16);
        r.record(0, vec![("roleclass_stability_backbone_mean", 1.0)]);
        r.record(1, vec![("roleclass_stability_backbone_mean", 0.5)]);
        let frames = r.snapshot();
        assert_eq!(frames.len(), 2);
        assert_eq!(frames[0].seq, 0);
        assert_eq!(frames[1].seq, 1);
        assert!(frames[0].ts_ns <= frames[1].ts_ns);
        assert_eq!(frames[1].window, 1);
        assert_eq!(r.dropped(), 0);
    }

    #[test]
    fn overflow_evicts_oldest_first() {
        let r = TimeseriesRing::new(3);
        for w in 0..5u64 {
            r.record(w, vec![("roleclass_stability_windows_total", w as f64)]);
        }
        let frames = r.snapshot();
        assert_eq!(frames.len(), 3);
        assert_eq!(r.dropped(), 2);
        let seqs: Vec<u64> = frames.iter().map(|f| f.seq).collect();
        assert_eq!(seqs, [2, 3, 4]);
        assert_eq!(frames[0].window, 2);
    }

    #[test]
    fn take_clears_but_seq_continues() {
        let r = TimeseriesRing::new(8);
        r.record(0, vec![]);
        assert_eq!(r.take().len(), 1);
        assert!(r.is_empty());
        r.record(1, vec![]);
        assert_eq!(r.snapshot()[0].seq, 1);
    }

    #[test]
    fn tail_returns_newest() {
        let r = TimeseriesRing::new(8);
        for w in 0..5u64 {
            r.record(w, vec![]);
        }
        let t = r.tail(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].seq, 3);
        assert_eq!(t[1].seq, 4);
        assert_eq!(r.tail(100).len(), 5);
    }

    #[test]
    fn json_renders_whole_and_fractional_values() {
        let frame = MetricFrame {
            seq: 3,
            ts_ns: 7,
            window: 2,
            values: vec![
                ("roleclass_stability_groups_tracked", 4.0),
                ("roleclass_stability_backbone_min", 0.25),
            ],
        };
        let expected = concat!(
            "{\"seq\":3,\"ts_ns\":7,\"window\":2,\"values\":{",
            "\"roleclass_stability_groups_tracked\":4.0,",
            "\"roleclass_stability_backbone_min\":0.25}}"
        );
        assert_eq!(frame.to_json(), expected);
        let empty = MetricFrame {
            seq: 0,
            ts_ns: 0,
            window: 0,
            values: vec![],
        };
        assert!(empty.to_json().ends_with("\"values\":{}}"));
    }

    #[test]
    fn capacity_floor_is_one() {
        let r = TimeseriesRing::new(0);
        assert_eq!(r.capacity(), 1);
        r.record(0, vec![]);
        r.record(1, vec![]);
        assert_eq!(r.len(), 1);
        assert_eq!(r.dropped(), 1);
    }
}
