//! Integration tests of the event journal: JSON round-trips through a
//! real parser, and ring-buffer eviction holds under arbitrary load.

use proptest::prelude::*;
use serde::value::Value;
use telemetry::{EventJournal, FieldValue};

/// Object-field lookup on the vendored JSON value model.
fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Map(m) => &m.iter().find(|(k, _)| k == key).expect("missing field").1,
        other => panic!("expected object, got {}", other.kind()),
    }
}

#[test]
fn events_round_trip_through_a_json_parser() {
    let j = EventJournal::new(16);
    j.record(
        "engine",
        "roleclass_test_all_field_types",
        vec![
            ("count", FieldValue::U64(u64::MAX)),
            ("delta", FieldValue::I64(-42)),
            ("score", FieldValue::F64(87.5)),
            ("whole", FieldValue::F64(3.0)),
            ("degraded", FieldValue::Bool(true)),
            ("host", FieldValue::Str("10.0.0.1".to_string())),
            ("tricky", FieldValue::Str("a\"b\\c\nd\te\u{1}".to_string())),
        ],
    );
    let jsonl = j.to_jsonl();
    let line = jsonl.lines().next().unwrap();
    let v: Value = serde_json::from_str(line).expect("journal line must be valid JSON");
    assert_eq!(field(&v, "seq"), &Value::U64(0));
    assert_eq!(field(&v, "layer"), &Value::Str("engine".to_string()));
    assert_eq!(
        field(&v, "name"),
        &Value::Str("roleclass_test_all_field_types".to_string())
    );
    let fields = field(&v, "fields");
    assert_eq!(field(fields, "count"), &Value::U64(u64::MAX));
    assert_eq!(field(fields, "delta"), &Value::I64(-42));
    assert_eq!(field(fields, "score"), &Value::F64(87.5));
    assert_eq!(field(fields, "whole"), &Value::F64(3.0));
    assert_eq!(field(fields, "degraded"), &Value::Bool(true));
    assert_eq!(field(fields, "host"), &Value::Str("10.0.0.1".to_string()));
    assert_eq!(
        field(fields, "tricky"),
        &Value::Str("a\"b\\c\nd\te\u{1}".to_string())
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Under any load, the ring keeps exactly the newest `capacity`
    /// events, in order, with dense sequence numbers and an accurate
    /// drop count.
    #[test]
    fn ring_evicts_oldest_first(capacity in 1usize..64, total in 0usize..200) {
        let j = EventJournal::new(capacity);
        for _ in 0..total {
            j.record("engine", "roleclass_test_event", vec![]);
        }
        let kept = total.min(capacity);
        prop_assert_eq!(j.len(), kept);
        prop_assert_eq!(j.dropped(), (total - kept) as u64);
        let snapshot = j.snapshot();
        let seqs: Vec<u64> = snapshot.iter().map(|e| e.seq).collect();
        let expected: Vec<u64> = ((total - kept) as u64..total as u64).collect();
        prop_assert_eq!(seqs, expected, "newest events survive, oldest evicted");
        // Timestamps are monotone within the ring.
        for w in snapshot.windows(2) {
            prop_assert!(w[0].ts_ns <= w[1].ts_ns);
        }
    }

    /// `tail(n)` is always the suffix of `snapshot()`.
    #[test]
    fn tail_is_a_snapshot_suffix(capacity in 1usize..32, total in 0usize..64, n in 0usize..40) {
        let j = EventJournal::new(capacity);
        for _ in 0..total {
            j.record("engine", "roleclass_test_event", vec![]);
        }
        let all = j.snapshot();
        let tail = j.tail(n);
        let want = &all[all.len().saturating_sub(n)..];
        prop_assert_eq!(tail.len(), want.len());
        for (a, b) in tail.iter().zip(want) {
            prop_assert_eq!(a.seq, b.seq);
        }
    }
}
