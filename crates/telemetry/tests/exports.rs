//! Export-format and concurrency guarantees of the registry.
//!
//! The golden test pins the Prometheus text format byte-for-byte: any
//! drift in ordering, number formatting, or series naming is a breaking
//! change for scrapers and must show up here.

use telemetry::{Recorder, Registry};

fn sample_registry() -> Registry {
    let reg = Registry::new();
    reg.counter("roleclass_engine_windows_total").add(3);
    reg.gauge("roleclass_aggregator_probes_attached").set(2);
    // Dyadic values: the sums are exact, so the goldens are too.
    let h = reg.histogram("roleclass_engine_form_seconds", &[0.001, 0.1, 1.0]);
    h.observe(0.25);
    h.observe(0.25);
    h.observe(0.5);
    h.observe(2.5);
    reg
}

#[test]
fn golden_prometheus_text() {
    let expected = "\
# TYPE roleclass_aggregator_probes_attached gauge
roleclass_aggregator_probes_attached 2
# TYPE roleclass_engine_form_seconds histogram
roleclass_engine_form_seconds_bucket{le=\"0.001\"} 0
roleclass_engine_form_seconds_bucket{le=\"0.1\"} 0
roleclass_engine_form_seconds_bucket{le=\"1\"} 3
roleclass_engine_form_seconds_bucket{le=\"+Inf\"} 4
roleclass_engine_form_seconds_sum 3.5
roleclass_engine_form_seconds_count 4
# TYPE roleclass_engine_windows_total counter
roleclass_engine_windows_total 3
";
    assert_eq!(sample_registry().prometheus_text(), expected);
}

#[test]
fn golden_json_snapshot() {
    let expected = "{\"counters\":{\"roleclass_engine_windows_total\":3},\
\"gauges\":{\"roleclass_aggregator_probes_attached\":2},\
\"histograms\":{\"roleclass_engine_form_seconds\":{\"count\":4,\"sum\":3.5,\
\"buckets\":[{\"le\":0.001,\"count\":0},{\"le\":0.1,\"count\":0},\
{\"le\":1.0,\"count\":3},{\"le\":\"+Inf\",\"count\":4}]}}}";
    assert_eq!(sample_registry().json_snapshot(), expected);
}

#[test]
fn exposition_conformance_help_type_and_inf_bucket() {
    // Prometheus exposition format: when help is set, the `# HELP` line
    // precedes `# TYPE`, with `\` and newline escaped; the histogram
    // always ends in a `+Inf` bucket equal to its count.
    let reg = sample_registry();
    reg.set_help(
        "roleclass_engine_windows_total",
        "Completed windows.\nOne per cycle \\ run.",
    );
    let text = reg.prometheus_text();
    let lines: Vec<&str> = text.lines().collect();
    let help_idx = lines
        .iter()
        .position(|l| l.starts_with("# HELP roleclass_engine_windows_total"))
        .expect("HELP line present once help is set");
    assert_eq!(
        lines[help_idx],
        "# HELP roleclass_engine_windows_total Completed windows.\\nOne per cycle \\\\ run."
    );
    assert_eq!(
        lines[help_idx + 1],
        "# TYPE roleclass_engine_windows_total counter"
    );
    // Only the metric with help set emits a HELP line; the golden test
    // above stays byte-exact for help-less registries.
    assert_eq!(lines.iter().filter(|l| l.starts_with("# HELP")).count(), 1);
    // The +Inf bucket closes every histogram and equals its count.
    assert!(text.contains("roleclass_engine_form_seconds_bucket{le=\"+Inf\"} 4"));
    assert!(text.contains("roleclass_engine_form_seconds_count 4"));
}

#[test]
fn export_ordering_is_stable_across_registration_orders() {
    let a = Registry::new();
    a.counter("roleclass_x_b_total").inc();
    a.counter("roleclass_x_a_total").inc();
    let b = Registry::new();
    b.counter("roleclass_x_a_total").inc();
    b.counter("roleclass_x_b_total").inc();
    assert_eq!(a.prometheus_text(), b.prometheus_text());
    assert_eq!(a.json_snapshot(), b.json_snapshot());
}

#[test]
fn exported_names_use_the_valid_charset() {
    let reg = sample_registry();
    for name in reg.names() {
        assert!(!name.is_empty());
        let mut chars = name.chars();
        assert!(chars.next().unwrap().is_ascii_lowercase(), "{name}");
        assert!(
            chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
            "{name} has characters outside [a-z0-9_]"
        );
    }
}

#[test]
fn registry_is_thread_safe() {
    let rec = std::sync::Arc::new(Recorder::new());
    const THREADS: usize = 8;
    const PER_THREAD: usize = 10_000;
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let rec = std::sync::Arc::clone(&rec);
            scope.spawn(move || {
                // Every thread registers the same names concurrently and
                // hammers the shared atomics.
                let c = rec.registry().counter("roleclass_test_ops_total");
                let g = rec.registry().gauge("roleclass_test_last_thread");
                let h = rec
                    .registry()
                    .histogram("roleclass_test_value", &[10.0, 1000.0]);
                for i in 0..PER_THREAD {
                    c.inc();
                    g.set(t as i64);
                    h.observe((i % 100) as f64);
                }
            });
        }
    });
    let reg = rec.registry();
    assert_eq!(
        reg.counter("roleclass_test_ops_total").get(),
        (THREADS * PER_THREAD) as u64
    );
    let h = reg.histogram("roleclass_test_value", &[10.0, 1000.0]);
    assert_eq!(h.count(), (THREADS * PER_THREAD) as u64);
    // Each thread observes 0..=99 cyclically: sum = 4950 per 100 obs.
    let expected_sum = (THREADS * (PER_THREAD / 100) * 4950) as f64;
    assert!((h.sum() - expected_sum).abs() < 1e-6);
    let g = reg.gauge("roleclass_test_last_thread").get();
    assert!((0..THREADS as i64).contains(&g));
}
