//! Asset discovery: expose the logical structure of an unknown network.
//!
//! The role-classification use case practitioners reach for first: point
//! the algorithm at a day of flows from a network you did not build and
//! get back its logical structure — server tiers, client populations,
//! the odd scanner — at a granularity a human can review.
//!
//! Run with: `cargo run --release --example asset_discovery`

use role_classification::cluster::metrics;
use role_classification::roleclass::{try_classify, Params};
use role_classification::synthnet::scenarios;
use std::collections::BTreeMap;

fn main() {
    // Stand-in for "a day of traffic from the unknown network": the
    // BigCompany-like scenario. In production this would come from
    // NetFlow or pcap via the `flow` crate parsers.
    let net = scenarios::big_company(7);
    println!(
        "discovering structure of a {}-host network...",
        net.host_count()
    );

    let result = try_classify(&net.connsets, &Params::default()).expect("valid params");
    println!(
        "-> {} role groups (a {}x reduction in objects to review)\n",
        result.grouping.group_count(),
        net.host_count() / result.grouping.group_count().max(1)
    );

    println!("largest discovered groups:");
    for g in result.grouping.largest(8) {
        // In real life an admin labels these; here we peek at the ground
        // truth to show the discovery is right.
        let mut roles: BTreeMap<&str, usize> = BTreeMap::new();
        for &m in &g.members {
            *roles
                .entry(net.truth.role_of(m).unwrap_or("?"))
                .or_default() += 1;
        }
        let dominant = roles
            .iter()
            .max_by_key(|&(_, n)| *n)
            .map(|(r, _)| *r)
            .unwrap_or("?");
        println!(
            "  group {:>4}  {:>5} hosts  (actually: {})",
            g.id.to_string(),
            g.len(),
            dominant
        );
    }

    // The scanner anomaly the paper found at BigCompany: one host whose
    // connection count dwarfs its group's.
    let scanner = net.host("scanner");
    let deg = net.connsets.degree(scanner).unwrap_or(0);
    println!(
        "\nanomaly: host {} touches {} machines ({}% of the network) — \
         the paper's BigCompany scan host",
        scanner,
        deg,
        100 * deg / net.host_count()
    );

    // Directionality (the paper's §4.1 aside): flow-initiation ratios
    // separate server-like from client-like groups when direction data
    // is available. The synthetic connection sets here carry no flow
    // directions, so derive them from a fabricated trace.
    use role_classification::flow::ConnsetBuilder;
    use role_classification::synthnet::trace;
    let flows = trace::expand(&net.connsets, trace::TraceOptions::default(), 3);
    let mut builder = ConnsetBuilder::new();
    builder.add_records(flows.iter());
    let directed = builder.build();
    let phones = net.role_hosts("ip_phones");
    let call_mgr = net.role_hosts("call_mgr")[0];
    println!(
        "\ndirectionality check: call manager server_ratio {:.2}, a phone {:.2}",
        directed.server_ratio(call_mgr).unwrap_or(0.5),
        directed.server_ratio(phones[0]).unwrap_or(0.5),
    );

    let rand = metrics::rand_statistic(&net.truth.partition(), &result.grouping.as_partition());
    println!("\nagreement with ground-truth roles (Rand statistic): {rand:.4}");
}
