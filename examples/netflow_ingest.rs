//! NetFlow/pcap ingestion: the full parser path from wire bytes to role
//! groups.
//!
//! Fabricates a day of traffic for the Figure 1 network, serializes it
//! as real NetFlow v5 export packets *and* as a pcap capture, parses
//! both back, verifies the two paths agree, and classifies the result.
//!
//! Run with: `cargo run --example netflow_ingest`

use role_classification::flow::{netflow, pcap, ConnsetBuilder};
use role_classification::roleclass::{try_classify, Params};
use role_classification::synthnet::{scenarios, trace};

fn main() {
    let net = scenarios::figure1(3, 3);
    let opts = trace::TraceOptions {
        start_ms: 1_000_000,
        span_ms: 3_600_000,
        ..trace::TraceOptions::default()
    };
    let records = trace::expand(&net.connsets, opts, 9);
    println!(
        "fabricated {} flows for the Figure 1 network",
        records.len()
    );

    // Path A: NetFlow v5 export stream.
    let wire = netflow::write_stream(&records, 1_000_000);
    println!(
        "netflow v5: {} bytes ({} packets)",
        wire.len(),
        wire.len()
            .div_ceil(netflow::HEADER_LEN + 30 * netflow::RECORD_LEN)
    );
    let from_netflow = netflow::parse_stream(&wire).expect("valid v5 stream");

    // Path B: pcap capture (one synthetic packet per flow).
    let capture = pcap::write_file(&records);
    println!("pcap: {} bytes", capture.len());
    let parsed = pcap::parse_file(&capture).expect("valid capture");
    println!(
        "pcap parse: {} flows, {} skipped",
        parsed.records.len(),
        parsed.skipped
    );

    // Both paths must reconstruct the same connection sets.
    let build = |records: &[role_classification::flow::FlowRecord]| {
        let mut b = ConnsetBuilder::new();
        b.add_records(records.iter());
        b.build()
    };
    let cs_netflow = build(&from_netflow);
    let cs_pcap = build(&parsed.records);
    assert_eq!(cs_netflow.edges(), cs_pcap.edges());
    assert_eq!(cs_netflow.edges(), net.connsets.edges());
    println!("netflow and pcap paths reconstruct identical connection sets");

    let params = Params::default().with_s_lo(90.0).with_s_hi(95.0);
    let result = try_classify(&cs_netflow, &params).expect("valid params");
    println!(
        "\nclassified into {} groups (expected 5 for Figure 1):",
        result.grouping.group_count()
    );
    for g in result.grouping.groups() {
        println!("  group {} (K={}): {} member(s)", g.id, g.k, g.len());
    }
}
