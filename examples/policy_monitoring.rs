//! Policy monitoring: the paper's Section 2 deployment end to end.
//!
//! Probes replay a day of traffic into the aggregator; the aggregator
//! classifies hosts into role groups; an administrator labels the groups
//! and installs a group-level policy ("engineering must not touch the
//! sales database"); the policy engine and the new-neighbor detector
//! then flag a compromised engineering host.
//!
//! Run with: `cargo run --release --example policy_monitoring`

use role_classification::aggregator::LabelStore;
use role_classification::aggregator::{
    Aggregator, AggregatorConfig, NewNeighborDetector, Policy, PolicyEngine, ReplayProbe, Selector,
};
use role_classification::flow::FlowRecord;
use role_classification::roleclass::{EngineConfig, Params};
use role_classification::synthnet::{scenarios, trace};

fn main() {
    // Day 0: normal traffic from the Mazu-like network.
    let net = scenarios::mazu(42);
    let opts = trace::TraceOptions {
        span_ms: 86_400_000,
        ..trace::TraceOptions::default()
    };
    let day0 = trace::expand(&net.connsets, opts, 1);
    println!("replaying {} flows through the aggregator...", day0.len());

    let mut agg = Aggregator::new(AggregatorConfig {
        window_ms: 86_400_000,
        origin_ms: 0,
        engine: EngineConfig::new(Params::default()),
        min_flows: 1,
        ..AggregatorConfig::default()
    });
    agg.attach(Box::new(ReplayProbe::new("core-switch", day0)));
    let run = agg.run_cycle();
    println!(
        "baseline run: {} hosts -> {} groups\n",
        run.grouping.host_count(),
        run.grouping.group_count()
    );

    // The administrator reviews the groups and labels the two that
    // matter for the policy (using ground truth as the stand-in for
    // human knowledge).
    let mut labels = LabelStore::new();
    let eng_host = net.role_hosts("eng")[0];
    let eng_group = run.grouping.group_of(eng_host).expect("eng host grouped");
    labels.set(eng_group, "engineering");
    let exch = net.host("ms_exchange");
    let exch_group = run.grouping.group_of(exch).expect("exchange grouped");
    labels.set(exch_group, "exchange-servers");
    println!(
        "labeled group {} as 'engineering', group {} as 'exchange-servers'",
        eng_group, exch_group
    );

    let mut engine = PolicyEngine::new();
    engine.add(Policy::Forbid {
        name: "eng-keeps-off-exchange".into(),
        from: Selector::Label("engineering".into()),
        to: Selector::Label("exchange-servers".into()),
    });

    // Day 1: the same network, plus a compromised engineering host that
    // starts talking to the Exchange server pool.
    let naughty = FlowRecord::pair(eng_host, exch);
    let verdicts = engine.check(&run.grouping, &labels, &naughty);
    println!("\npolicy check on eng -> exchange flow:");
    for v in &verdicts {
        println!(
            "  VIOLATION of '{}': group {} -> group {} ({} -> {})",
            v.policy, v.src_group, v.dst_group, v.flow.src, v.flow.dst
        );
    }
    assert!(!verdicts.is_empty(), "expected a policy violation");

    // Independently, the anomaly detector flags the flow because the
    // engineering group never talked to the Exchange group before.
    let detector = NewNeighborDetector::new(run.grouping.clone(), &run.connsets, 500);
    let alerts = detector.check_flow(&naughty);
    println!("\nanomaly detector on the same flow:");
    for a in &alerts {
        println!("  [{:?}] {:?}", a.severity, a.kind);
    }
}
