//! Quickstart: classify a small network from a hand-written flow log.
//!
//! Run with: `cargo run --example quickstart`

use role_classification::flow::textlog;
use role_classification::flow::ConnsetBuilder;
use role_classification::roleclass::{try_classify, Params};

fn main() {
    // A tiny enterprise: three sales workstations and three engineering
    // workstations sharing mail and web servers, plus one role-specific
    // server each (the paper's Figure 1).
    let log = "\
# src         dst
10.0.0.11  10.0.0.1   # sales-1 -> mail
10.0.0.11  10.0.0.2   # sales-1 -> web
10.0.0.11  10.0.0.3   # sales-1 -> sales-db
10.0.0.12  10.0.0.1
10.0.0.12  10.0.0.2
10.0.0.12  10.0.0.3
10.0.0.13  10.0.0.1
10.0.0.13  10.0.0.2
10.0.0.13  10.0.0.3
10.0.0.21  10.0.0.1   # eng-1 -> mail
10.0.0.21  10.0.0.2   # eng-1 -> web
10.0.0.21  10.0.0.4   # eng-1 -> src-ctl
10.0.0.22  10.0.0.1
10.0.0.22  10.0.0.2
10.0.0.22  10.0.0.4
10.0.0.23  10.0.0.1
10.0.0.23  10.0.0.2
10.0.0.23  10.0.0.4
";
    // Inline comments are not part of the format; strip them first.
    let cleaned: String = log
        .lines()
        .map(|l| l.split('#').next().unwrap_or("").trim())
        .filter(|l| !l.is_empty())
        .map(|l| format!("{l}\n"))
        .collect();

    let records = textlog::parse(&cleaned).expect("valid flow log");
    println!("parsed {} flow records", records.len());

    let mut builder = ConnsetBuilder::new();
    builder.add_records(records.iter());
    let connsets = builder.build();
    println!(
        "{} hosts, {} connections",
        connsets.host_count(),
        connsets.connection_count()
    );

    // Keep the formation-phase structure visible (high S^lo): the five
    // textbook groups of the paper's Figure 1.
    let params = Params::default().with_s_lo(90.0).with_s_hi(95.0);
    let result = try_classify(&connsets, &params).expect("valid params");

    println!("\n{} role groups:", result.grouping.group_count());
    for g in result.grouping.groups() {
        let members: Vec<String> = g.members.iter().map(|m| m.to_string()).collect();
        println!("  group {} (K={}): {}", g.id, g.k, members.join(", "));
    }

    println!("\nformation trace (the paper's Figure 2):");
    for ev in &result.formation_trace {
        println!(
            "  k={}: {:?} group of {} host(s)",
            ev.k,
            ev.kind,
            ev.members.len()
        );
    }
}
