//! Role drift over time: correlation keeping group ids (and labels)
//! stable while the network changes underneath.
//!
//! Simulates four days of operation. Between days, hosts arrive and
//! leave, a server gets replaced, and finally a server is split into two
//! load-sharing replicas (the paper's Section 5.1 hard case). The group
//! ids — and therefore the administrator's labels — survive throughout.
//!
//! Run with: `cargo run --release --example role_drift`

use role_classification::flow::HostAddr;
use role_classification::roleclass::{
    apply_correlation, diff_groupings, try_classify, try_correlate, Params,
};
use role_classification::synthnet::{churn, scenarios};

type DayMutation = Box<dyn Fn(&mut synthnet::SyntheticNetwork)>;

fn main() {
    let params = Params::default();
    let mut net = scenarios::mazu(42);

    // Day 0 baseline.
    let mut prev_cs = net.connsets.clone();
    let mut prev_grouping = try_classify(&prev_cs, &params)
        .expect("valid params")
        .grouping;
    println!(
        "day 0: {} hosts, {} groups",
        prev_cs.host_count(),
        prev_grouping.group_count()
    );

    let days: Vec<(&str, DayMutation)> = vec![
        (
            "day 1: one eng host leaves, one new lab machine arrives",
            Box::new(|net: &mut synthnet::SyntheticNetwork| {
                let gone = net.role_hosts("eng")[3];
                churn::remove_host(net, gone);
                let template = net.role_hosts("lab")[0];
                churn::add_host_like(net, template, HostAddr::from_octets(10, 0, 2, 1));
            }),
        ),
        (
            "day 2: web server replaced with new hardware",
            Box::new(|net: &mut synthnet::SyntheticNetwork| {
                let old = net.host("web");
                churn::replace_host(net, old, HostAddr::from_octets(10, 0, 2, 2));
            }),
        ),
        (
            "day 3: exchange server split into two load-sharing replicas",
            Box::new(|net: &mut synthnet::SyntheticNetwork| {
                let old = net.host("ms_exchange");
                churn::split_server(
                    net,
                    old,
                    HostAddr::from_octets(10, 0, 2, 3),
                    HostAddr::from_octets(10, 0, 2, 4),
                );
            }),
        ),
    ];

    for (label, mutate) in days {
        println!("\n{label}");
        mutate(&mut net);
        let curr_cs = net.connsets.clone();
        let classified = try_classify(&curr_cs, &params).expect("valid params");
        let corr = try_correlate(
            &prev_cs,
            &prev_grouping,
            &curr_cs,
            &classified.grouping,
            &params,
        )
        .expect("valid params");
        let renamed = apply_correlation(&corr, &classified.grouping);
        println!(
            "  {} groups ({} correlated to yesterday, {} new, {} vanished)",
            renamed.group_count(),
            corr.id_map.len(),
            corr.new_groups.len(),
            corr.vanished_groups.len()
        );
        let d = diff_groupings(&prev_grouping, &renamed);
        print!("{}", indent(&d.render(), "  "));
        prev_cs = curr_cs;
        prev_grouping = renamed;
    }
}

fn indent(text: &str, prefix: &str) -> String {
    text.lines().map(|l| format!("{prefix}{l}\n")).collect()
}
