#!/usr/bin/env bash
# Runs the kernel benchmark suite and distills its output into
# BENCH_kernel.json: one entry per criterion measurement (seconds per
# iteration) plus the formation speedup ratios the PR's acceptance
# criterion tracks. Also replays the full pipeline with a telemetry
# recorder attached and stores the per-stage breakdown as
# BENCH_pipeline.json. Run from anywhere; writes into the workspace
# root.
set -euo pipefail
cd "$(dirname "$0")/.."

OUT="BENCH_kernel.json"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

# Engine worker count for this run: ROLECLASS_THREADS (parsed here, at
# the script/binary layer — the engine crates take it via EngineConfig),
# else one worker per CPU core. Pruning is the engine default (auto).
WORKERS="${ROLECLASS_THREADS:-$(nproc)}"
PRUNE="auto"
export ROLECLASS_THREADS="$WORKERS"
echo "==> engine: $WORKERS worker(s), prune $PRUNE"

echo "==> cargo bench -p bench --bench kernel_bench"
cargo bench -p bench --bench kernel_bench 2>&1 | tee "$RAW"

# Criterion-stub lines:      <name>: mean <duration> over <n> iterations
# Speedup lines (one-shot):  formation_speedup/<n>: kernel <a>s legacy <b>s ratio <r>x
awk '
function dur_to_secs(d) {
    if (d ~ /ns$/) return substr(d, 1, length(d) - 2) / 1e9
    if (d ~ /µs$/) return substr(d, 1, length(d) - 3) / 1e6
    if (d ~ /us$/) return substr(d, 1, length(d) - 2) / 1e6
    if (d ~ /ms$/) return substr(d, 1, length(d) - 2) / 1e3
    if (d ~ /s$/)  return substr(d, 1, length(d) - 1) + 0
    return d + 0
}
BEGIN { nb = 0; ns = 0 }
/: mean .* over .* iterations$/ {
    name = $1; sub(/:$/, "", name)
    bench_name[nb] = name
    bench_secs[nb] = dur_to_secs($3)
    nb++
}
/^formation_speedup\// {
    name = $1; sub(/:$/, "", name)
    speed_name[ns] = name
    speed_kernel[ns] = substr($3, 1, length($3) - 1) + 0
    speed_legacy[ns] = substr($5, 1, length($5) - 1) + 0
    speed_ratio[ns] = substr($7, 1, length($7) - 1) + 0
    ns++
}
END {
    printf "{\n  \"benchmarks\": {\n"
    for (i = 0; i < nb; i++)
        printf "    \"%s\": %.9f%s\n", bench_name[i], bench_secs[i], (i < nb - 1 ? "," : "")
    printf "  },\n  \"formation_speedup\": {\n"
    for (i = 0; i < ns; i++)
        printf "    \"%s\": {\"kernel_secs\": %.3f, \"legacy_secs\": %.3f, \"ratio\": %.2f}%s\n", \
            speed_name[i], speed_kernel[i], speed_legacy[i], speed_ratio[i], (i < ns - 1 ? "," : "")
    printf "  }\n}\n"
}
' "$RAW" | sed "1s/{/{\\n  \"workers\": $WORKERS,\\n  \"prune\": \"$PRUNE\",/" > "$OUT"

echo "==> wrote $OUT"
cat "$OUT"

# Per-stage pipeline breakdown, measured through the telemetry registry.
# The binary prints a human-readable table, then the JSON document after
# a marker line; keep the table on the terminal and store the JSON.
PIPE_OUT="BENCH_pipeline.json"
echo "==> cargo run --release -p bench --bin pipeline_stages"
PIPE_RAW="$(mktemp)"
trap 'rm -f "$RAW" "$PIPE_RAW"' EXIT
cargo run --release -q -p bench --bin pipeline_stages | tee "$PIPE_RAW"
awk '/^===BENCH_PIPELINE_JSON===$/ { found = 1; next } found' "$PIPE_RAW" > "$PIPE_OUT"

echo "==> wrote $PIPE_OUT"

# Data-plane build + end-to-end window times at 1k/10k/100k hosts, with
# the pre-refactor (map-based) baseline recorded inside the binary for
# comparison. Same marker convention as the pipeline bench.
DP_OUT="BENCH_dataplane.json"
echo "==> cargo run --release -p bench --bin dataplane_bench"
DP_RAW="$(mktemp)"
trap 'rm -f "$RAW" "$PIPE_RAW" "$DP_RAW"' EXIT
cargo run --release -q -p bench --bin dataplane_bench | tee "$DP_RAW"
awk '/^===BENCH_DATAPLANE_JSON===$/ { found = 1; next } found' "$DP_RAW" > "$DP_OUT"

echo "==> wrote $DP_OUT"
