#!/usr/bin/env bash
# Advisory bench regression gate: re-runs the cheap benchmark modes and
# diffs fresh per-stage timings against the committed BENCH_*.json
# artifacts, flagging anything >25% slower. Exits 1 when a regression is
# flagged so callers can decide how loud to be — ci.sh wires it in as
# advisory (prints a warning, never fails the build), because wall-clock
# numbers on shared hardware are evidence, not verdicts.
#
# Scope: the dataplane bench runs in --quick mode (1k/5k/10k hosts; the
# committed 100k row is compared only when a fresh row exists for it),
# and the pipeline bench runs in full mode so its ~5k-host row matches
# the committed artifact. ROLECLASS_THREADS is pinned to 1 to match how
# the committed artifacts were measured.
set -uo pipefail
cd "$(dirname "$0")/.."

THRESHOLD_PCT="${BENCH_CHECK_THRESHOLD_PCT:-25}"
# Stages whose committed total is below this floor are skipped: tens of
# milliseconds swing far more than 25% run to run and would drown the
# signal in noise.
MIN_SECS="${BENCH_CHECK_MIN_SECS:-0.1}"
export ROLECLASS_THREADS=1

echo "==> bench_check: building bench binaries (release)"
cargo build --release -q -p bench --bin dataplane_bench --bin pipeline_stages

DP_RAW="$(mktemp)"
PIPE_RAW="$(mktemp)"
trap 'rm -f "$DP_RAW" "$PIPE_RAW"' EXIT

echo "==> bench_check: dataplane_bench --quick"
./target/release/dataplane_bench --quick 2>/dev/null \
    | awk '/^===BENCH_DATAPLANE_JSON===$/ { found = 1; next } found' > "$DP_RAW"

echo "==> bench_check: pipeline_stages"
./target/release/pipeline_stages 2>/dev/null \
    | awk '/^===BENCH_PIPELINE_JSON===$/ { found = 1; next } found' > "$PIPE_RAW"

python3 - "$DP_RAW" "$PIPE_RAW" "$THRESHOLD_PCT" "$MIN_SECS" <<'PY'
import json
import sys

dp_fresh_path, pipe_fresh_path = sys.argv[1], sys.argv[2]
threshold, min_secs = float(sys.argv[3]), float(sys.argv[4])
flagged = []


def compare(label, name, committed, fresh):
    """Flags `fresh` when it is more than `threshold` percent above `committed`."""
    if committed < min_secs or fresh <= 0.0:
        return
    delta_pct = (fresh / committed - 1.0) * 100.0
    if delta_pct > threshold:
        flagged.append(
            f"{label} {name}: {committed:.6f}s -> {fresh:.6f}s (+{delta_pct:.0f}%)"
        )


# Per-unit costs: which stage time divides by which work counter. These
# normalize away scenario-size drift, so they compare meaningfully even
# where raw stage times are too small for the min_secs floor — the work
# floor below keeps tiny denominators from amplifying noise instead.
UNIT_COSTS = [
    ("ns_per_candidate", "engine.correlate", "correlate_candidates"),
    ("ns_per_eval", "engine.correlate", "correlate_similarity_evals"),
    ("ns_per_pop", "merge.agglomerate", "merge_heap_pops"),
    ("ns_per_pair", "kernel.count", "kernel_base_pairs"),
]
MIN_UNITS = 1000


def compare_unit_costs(label, committed, fresh):
    """Diffs ns-per-unit stage costs where both rows carry the counters."""
    for name, stage, counter in UNIT_COSTS:
        base_units = committed.get("counters", {}).get(counter, 0)
        fresh_units = fresh.get("counters", {}).get(counter, 0)
        base_secs = committed.get("stages", {}).get(stage, 0.0)
        fresh_secs = fresh.get("stages", {}).get(stage, 0.0)
        if min(base_units, fresh_units) < MIN_UNITS or base_secs <= 0.0 or fresh_secs <= 0.0:
            continue
        base_ns = base_secs * 1e9 / base_units
        fresh_ns = fresh_secs * 1e9 / fresh_units
        delta_pct = (fresh_ns / base_ns - 1.0) * 100.0
        if delta_pct > threshold:
            flagged.append(
                f"{label} {name}: {base_ns:.0f}ns -> {fresh_ns:.0f}ns (+{delta_pct:.0f}%)"
            )


# Dataplane: match fresh rows to committed rows by nearest host count
# (populations land slightly under their nominal size).
dp_fresh = json.load(open(dp_fresh_path))
dp_committed = json.load(open("BENCH_dataplane.json"))
for row in dp_fresh["current"]:
    base = min(
        dp_committed["current"], key=lambda r: abs(r["hosts"] - row["hosts"])
    )
    if abs(base["hosts"] - row["hosts"]) > 0.2 * row["hosts"]:
        continue
    label = f"dataplane[{base['hosts']} hosts]"
    compare(label, "build_secs", base["build_secs"], row["build_secs"])
    compare(label, "window_secs", base["window_secs"], row["window_secs"])
    for stage, secs in row.get("stages", {}).items():
        if stage in base.get("stages", {}):
            compare(label, stage, base["stages"][stage], secs)
    compare_unit_costs(label, base, row)

# Pipeline: stage totals are comparable only when the scenario shape
# (hosts and window count) matches the committed run.
pipe_fresh = json.load(open(pipe_fresh_path))
pipe_committed = json.load(open("BENCH_pipeline.json"))
if (pipe_fresh["hosts"], pipe_fresh["windows"]) == (
    pipe_committed["hosts"],
    pipe_committed["windows"],
):
    label = f"pipeline[{pipe_fresh['hosts']} hosts]"
    for stage, info in pipe_fresh["stages"].items():
        if stage in pipe_committed["stages"]:
            compare(label, stage, pipe_committed["stages"][stage]["total_secs"], info["total_secs"])
    stab = pipe_fresh.get("stability")
    if stab is not None and stab["overhead_pct"] > 3.0:
        flagged.append(
            f"pipeline stability overhead {stab['overhead_pct']:.2f}% exceeds the 3% budget"
        )
    prof = pipe_fresh.get("profile")
    if prof is not None and prof["overhead_pct"] > prof.get("budget_pct", 5.0):
        flagged.append(
            f"pipeline profiler overhead {prof['overhead_pct']:.2f}% exceeds "
            f"the {prof.get('budget_pct', 5.0):.0f}% budget"
        )
else:
    print(
        "bench_check: pipeline scenario shape differs from the committed "
        f"artifact ({pipe_fresh['hosts']}x{pipe_fresh['windows']} vs "
        f"{pipe_committed['hosts']}x{pipe_committed['windows']}); skipping stage diff"
    )

if flagged:
    print(f"bench_check: {len(flagged)} timing(s) more than {threshold:.0f}% over the committed baseline:")
    for line in flagged:
        print(f"  {line}")
    sys.exit(1)
print(f"bench_check: all fresh timings within {threshold:.0f}% of the committed BENCH_*.json")
PY
