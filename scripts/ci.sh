#!/usr/bin/env bash
# Repo CI gate: formatting, lints (warnings are errors), full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

# Data-plane lint: host-keyed ordered maps/sets must not reappear in the
# hot path. The columnar plane keys everything by dense row/HostId;
# flow::reference is the one allowed home of the map-based spec.
# Boundary types (Grouping members, diffs, synth ground truth) keep
# their BTree collections *of* HostAddr values, but no new code may key
# a BTreeMap/BTreeSet container declaration on HostAddr outside the
# allowlist below.
echo "==> data-plane lint (no BTreeMap<HostAddr/BTreeSet<HostAddr outside flow::reference)"
DATAPLANE_ALLOW='crates/flow/src/reference.rs|crates/flow/src/connset.rs|crates/flow/src/anonymize.rs|crates/core/src/group.rs|crates/core/src/diff.rs|crates/core/src/correlate.rs|crates/core/src/services.rs|crates/core/src/stability.rs|crates/synth/src/model.rs|crates/cluster/src/metrics.rs|crates/aggregator/src/profile.rs|crates/aggregator/src/alerts.rs|crates/bench/src/bin/dataplane_bench.rs'
if grep -rnE 'BTree(Map|Set)<HostAddr' crates/*/src --include='*.rs' \
    | grep -vE "^($DATAPLANE_ALLOW):" ; then
  echo "ERROR: new host-keyed BTree container outside the data-plane allowlist." >&2
  echo "Use dense rows/HostId (flow::ConnectionSets) instead, or extend the" >&2
  echo "allowlist in scripts/ci.sh with a justification." >&2
  exit 1
fi

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

# Deprecation-clean gate: the panicking entry points (classify,
# form_groups, merge_groups, correlate) are deprecated in favor of the
# try_* forms; workspace code must not call them except where a test
# deliberately pins the legacy surface under #[allow(deprecated)].
echo "==> cargo clippy -- -D deprecated (no in-repo callers of deprecated APIs)"
cargo clippy --workspace --all-targets -- -D deprecated

echo "==> cargo test -q"
cargo test --workspace -q

# Telemetry must stay a pure observer: registry/span/event unit suites
# (incl. the Prometheus exposition conformance and event-journal ring
# property tests), the recorder-attached-vs-detached parity test, the
# metric/event-name lint (unique, snake_case, layer-prefixed), and the
# end-to-end decision-provenance test (every declared event type fires
# and every flight-recorder journal line parses).
echo "==> telemetry suite + name lint + provenance coverage"
cargo test -q -p telemetry
cargo test -q --test telemetry_parity --test metric_names --test event_journal

# Profiling must also stay a pure observer: the collapsed-stack
# exporter round-trips hostile span names (`;`, spaces, unicode) under
# proptest, profiler-attached outcomes are pinned bit-identical to
# detached runs across worker counts (inside telemetry_parity above),
# and the rcctl profile / serve /profile surfaces ride the facade's
# unit tests.
echo "==> profile suite (collapsed-stack round-trip + CLI/HTTP surfaces)"
cargo test -q --test profile_collapsed
cargo test -q -p role-classification --lib -- cli::tests serve::tests

# The storage layer must honor its durability contract on every
# backend: the shared conformance suite pins memory/appendlog/segment
# to one behavioral spec, the crash suite tears the tail off live files
# and requires recovery to lose at most the final record, and the
# schedules proptest drives random append/flush/crash/reopen
# interleavings against an in-memory model. The aggregator-side
# round-trip (checkpoint + journal + run history sharing one backend)
# rides in the crate test below.
echo "==> storage backend conformance + crash-recovery + schedules"
cargo test -q -p storage
cargo test -q -p aggregator --test crash_recovery

# Wire transport must shrug off a hostile network: the chaos suite runs
# the loopback-TCP pipeline through the deterministic fault proxy on a
# fixed seed matrix ([11, 23, 47], pinned inside the test) — lossy runs
# must produce outcomes bit-identical to the in-process baseline, and a
# blackholed probe must degrade the window and quarantine, never hang.
# The codec property tests fuzz the frame parser the same way the flow
# parsers are fuzzed.
echo "==> wire chaos suite (fixed seed matrix) + frame codec properties"
cargo test -q -p aggregator --test wire_chaos --test frame_codec_properties

# The kernel must be a pure throughput knob: its counts, the Engine's
# classifications, and every correlation are identical at any worker
# count and prune setting. The worker matrix (1, 2, 8 workers ×
# prune auto/off) runs in-process via EngineConfig — the engine crates
# no longer read ROLECLASS_THREADS, so one invocation covers the whole
# grid (see classification_is_bit_identical_across_worker_matrix and
# the pruned_* kernel properties).
echo "==> kernel + engine equivalence across the worker/prune matrix"
cargo test -q -p netgraph --test kernel_properties
cargo test -q -p roleclass --test engine_equivalence

# Advisory bench regression gate: fresh per-stage timings vs the
# committed BENCH_*.json artifacts, >25% slower gets flagged. Timing on
# shared hardware is noisy, so a flag warns but never fails the build;
# skip it entirely with CI_SKIP_BENCH_CHECK=1 when iterating.
if [ "${CI_SKIP_BENCH_CHECK:-0}" != "1" ]; then
  echo "==> bench regression check (advisory)"
  scripts/bench_check.sh \
    || echo "WARNING: bench_check flagged timings >25% over the committed baseline (advisory, not failing CI)"
fi

echo "CI OK"
