#!/usr/bin/env bash
# Repo CI gate: formatting, lints (warnings are errors), full test suite.
# Run from anywhere; operates on the workspace root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo test -q"
cargo test --workspace -q

# Telemetry must stay a pure observer: registry/span unit suite, the
# recorder-attached-vs-detached parity test, and the metric-name lint
# (unique, snake_case, layer-prefixed).
echo "==> telemetry suite + metric-name lint"
cargo test -q -p telemetry
cargo test -q --test telemetry_parity --test metric_names

# The kernel must be a pure throughput knob: its counts, the Engine's
# classifications, and every correlation are identical at any worker
# count. Exercised at 1, 2, and 8 workers.
for t in 1 2 8; do
  echo "==> kernel equivalence @ ROLECLASS_THREADS=$t"
  ROLECLASS_THREADS=$t cargo test -q -p netgraph --test kernel_properties
  ROLECLASS_THREADS=$t cargo test -q -p roleclass --test engine_equivalence
done

echo "CI OK"
