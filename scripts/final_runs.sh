#!/usr/bin/env bash
# Final artifact generation: refresh every experiment output, then the
# canonical test and bench logs at the repo root.
set -uo pipefail
cd "$(dirname "$0")/.."

{
    for exp in fig2 fig4 table1 fig5 ablation baselines seeds transients fig6 fig7; do
        cargo run --release -q -p bench --bin "exp_$exp" 2>/dev/null
        echo
    done
    cargo run --release -q -p bench --bin exp_autok 2>/dev/null
    echo
    cargo run --release -q -p bench --bin exp_table2 -- --quick 2>/dev/null
} | tee experiment_outputs.txt

cargo test --workspace 2>&1 | tee test_output.txt | tail -5
cargo bench --workspace 2>&1 | tee bench_output.txt | tail -5
echo "FINAL RUNS COMPLETE"
