#!/usr/bin/env bash
# Regenerates every paper table/figure reproduction (DESIGN.md §4).
# Usage: scripts/run_experiments.sh [--full]
#   default: quick mode (Mazu-scale sweeps, no 49k-host row)
#   --full:  everything, including HugeCompany (tens of minutes)
set -euo pipefail
cd "$(dirname "$0")/.."

QUICK="--quick"
if [[ "${1:-}" == "--full" ]]; then
    QUICK=""
fi

for exp in fig2 fig4 table1 fig5 ablation baselines seeds transients; do
    cargo run --release -q -p bench --bin "exp_$exp"
    echo
done
for exp in table2 fig6 fig7 autok; do
    # shellcheck disable=SC2086
    cargo run --release -q -p bench --bin "exp_$exp" -- $QUICK
    echo
done
