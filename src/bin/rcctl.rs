//! `rcctl`: role classification of hosts from connection patterns.
//!
//! See `rcctl help` or [`role_classification::cli`] for the interface.

use std::process::ExitCode;

// The binary (never library code) installs the counting allocator so
// `rcctl profile` span trees carry per-stage allocation tallies.
#[global_allocator]
static ALLOC: role_classification::telemetry::CountingAlloc =
    role_classification::telemetry::CountingAlloc::new();

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match role_classification::cli::run(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}", e.message);
            ExitCode::from(e.code as u8)
        }
    }
}
