//! `rcctl`: role classification of hosts from connection patterns.
//!
//! See `rcctl help` or [`role_classification::cli`] for the interface.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match role_classification::cli::run(&args) {
        Ok(out) => {
            print!("{out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("{}", e.message);
            ExitCode::from(e.code as u8)
        }
    }
}
