//! The `rcctl` command-line interface.
//!
//! A thin, dependency-free front end over the workspace: classify a flow
//! trace into role groups, correlate a new trace against a saved
//! snapshot, diff snapshots, and inspect traces. All logic lives here
//! (the binary is a two-liner) so integration tests can drive the exact
//! code paths users run.
//!
//! ```text
//! rcctl info      --input flows.txt
//! rcctl classify  --input flows.txt --snapshot today.json --dot groups.dot
//! rcctl correlate --prev today.json --input tomorrow.txt --snapshot tomorrow.json
//! rcctl diff      --prev today.json --curr tomorrow.json
//! rcctl metrics   --input flows.txt --window-ms 86400000
//! ```
//!
//! `classify` and `correlate` accept `--trace` to print the span tree
//! of the run (per-stage wall-clock timings); `metrics` replays the
//! trace through the full aggregator pipeline and prints the telemetry
//! registry in Prometheus text format (or JSON with `--json`);
//! `explain` replays a capture and prints the full decision chain for
//! one host; `stability` prints the role-stability observatory
//! (per-group persistence/backbone, per-host churn); `serve` replays
//! and then exposes `/metrics`, `/events`, `/stability`, and
//! `/healthz` over HTTP:
//!
//! ```text
//! rcctl explain   --input flows.txt --host 10.0.0.11 --window-ms 86400000
//! rcctl stability --input flows.txt --window-ms 86400000 --host 10.0.0.11
//! rcctl serve     --input flows.txt --addr 127.0.0.1:7878
//! ```
//!
//! `ingest listen` and `probe send` split the same pipeline across a
//! TCP wire: the listener classifies windows streamed to it over the
//! framed transport, the sender replays a capture into a listener:
//!
//! ```text
//! rcctl ingest listen --addr 127.0.0.1:7879 --probe edge --window-ms 1000
//! rcctl probe send    --input flows.txt --to 127.0.0.1:7879 --probe edge --window-ms 1000
//! ```

use crate::aggregator::{
    transport::stream_records, Aggregator, AggregatorConfig, ProbeReport, ReplayProbe, RunStore,
    StorageStack, SupervisorConfig, TransportConfig, WindowHealth, WireListener,
};
use crate::explain::{explain_host, explain_host_labeled};
use crate::flow::{
    netflow, pcap, rmon, textlog, ConnectionSets, ConnsetBuilder, FlowRecord, HostAddr,
};
use crate::roleclass::{
    auto_k_hi_otsu, diff_groupings, Engine, EngineConfig, EngineSnapshot, GroupId, Grouping,
    HostChurn, Params, PruneMode, WindowStability,
};
use crate::serve::{Server, ServerState};
use crate::stability_report;
use crate::storage::{BackendKind, StorageConfig};
use serde::{Deserialize, Serialize};
use std::path::Path;
use std::sync::Arc;
use telemetry::{Recorder, TimeseriesRing};

/// A saved classification snapshot: what `correlate` needs from the past.
#[derive(Serialize, Deserialize)]
pub struct Snapshot {
    /// The connection sets the grouping was computed from.
    pub connsets: ConnectionSets,
    /// The grouping (ids already correlated if this snapshot descends
    /// from an earlier one).
    pub grouping: Grouping,
}

/// CLI error: a message for stderr plus the intended exit code.
#[derive(Debug)]
pub struct CliError {
    /// Human-readable message.
    pub message: String,
    /// Process exit code.
    pub code: i32,
}

impl CliError {
    fn usage(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 2,
        }
    }

    fn runtime(message: impl Into<String>) -> Self {
        CliError {
            message: message.into(),
            code: 1,
        }
    }
}

/// Top-level usage text.
pub const USAGE: &str = "\
rcctl — role classification of hosts from connection patterns

USAGE:
  rcctl info      --input <FILE> [--format <FMT>]
  rcctl classify  --input <FILE> [--format <FMT>] [--snapshot <OUT.json>]
                  [--dot <OUT.dot>] [--s-lo N] [--s-hi N] [--k-hi N]
                  [--alpha N] [--beta N] [--auto-k-hi] [--min-flows N]
                  [--workers N] [--no-prune] [--trace]
  rcctl correlate --prev <SNAP.json> --input <FILE> [--format <FMT>]
                  [--snapshot <OUT.json>] [--trace]
                  [same tuning flags as classify]
  rcctl diff      --prev <SNAP.json> --curr <SNAP.json>
  rcctl metrics   --input <FILE> [--format <FMT>] [--window-ms N]
                  [--json] [--trace] [--state <DIR>] [--store <BACKEND>]
                  [same tuning flags as classify]
  rcctl explain   --input <FILE> --host <ADDR> [--format <FMT>]
                  [--window-ms N] [same tuning flags as classify]
  rcctl explain   --host <ADDR> --state <DIR> [--store <BACKEND>]
                  [--at <MS>] [same tuning flags as classify]
  rcctl stability --input <FILE> [--format <FMT>] [--window-ms N]
                  [--host <ADDR>] [--group <ID>] [--json]
                  [same tuning flags as classify]
  rcctl profile   [--input <FILE> [--format <FMT>] [--window-ms N]]
                  [--hosts N] [--windows N] [--collapsed <OUT.folded>]
                  [--json] [same tuning flags as classify]
  rcctl serve     --input <FILE> [--format <FMT>] [--window-ms N]
                  [--addr <IP:PORT>] [--addr-file <FILE>]
                  [--max-requests N] [--state <DIR>] [--store <BACKEND>]
                  [same tuning flags as classify]
  rcctl ingest listen --probe <NAME> [--addr <IP:PORT>] [--addr-file <FILE>]
                  [--window-ms N] [--origin-ms N] [--max-windows N]
                  [same tuning flags as classify]
  rcctl probe send --input <FILE> --to <IP:PORT> [--probe <NAME>]
                  [--format <FMT>] [--window-ms N] [--origin-ms N]

FORMATS (default: by file extension, falling back to text):
  text     whitespace/CSV flow log        (.txt, .log, .csv)
  netflow  NetFlow v5 binary export       (.nf, .netflow)
  pcap     libpcap capture                (.pcap, .cap)
  rmon     RMON2 matrix table dump        (.rmon)

OBSERVABILITY:
  --trace      print the span tree of the run with per-stage durations
  metrics      replay the trace through the aggregator pipeline and print
               the telemetry registry (Prometheus text; --json for JSON
               including metrics, spans, and probe reports)
  explain      replay the capture and print the full decision chain for
               one host: formation (k and mechanism), every merge its
               group was considered for (score, S^hi/S^lo gate verdict,
               connection requirement), and group-id lineage per window
  stability    replay the capture windowed and print the stability
               observatory: per-window churn summary, per-group
               persistence/backbone (--group narrows to one id and adds
               its trajectory), and per-host group-id flips (--host
               narrows to one host); --json for machine-readable rows
  profile      run a workload with the profiler attached and print the
               aggregated span profile: per-stage call counts, total and
               self (exclusive) wall time, min/max, and — in binaries
               built with the counting allocator, like rcctl — bytes and
               allocations attributed to each stage. The workload is
               --input replayed window by window, or, without --input, a
               synthetic department-structured network of --hosts hosts
               (default 5000) over --windows windows (default 3).
               --collapsed FILE writes flamegraph-ready collapsed-stack
               lines (stage;stage;... self-microseconds); --json prints
               the table as JSON
  serve        replay the capture, then serve GET /metrics (Prometheus
               text), /events (journal as JSONL; ?tail=N), /stability
               (per-window stability rows; ?follow streams the metric
               ring as NDJSON), /history (retained window summaries;
               ?at=MS returns the full run current at that instant;
               requires --state), /profile (aggregated span profile as
               JSON; ?collapsed for flamegraph-ready stack lines), and
               /healthz (last window's health) until --max-requests is
               reached
  --window-ms  window length for replay commands (default: whole trace)

DURABLE STORAGE AND TIME TRAVEL:
  --state      root directory of the storage stack. metrics/serve
               persist every classified window there (run history,
               flight journal, checkpoint), with disk bounded by the
               backend's retention policy; explain replays windows back
               out of it instead of reading a capture
  --store      backend serving --state: memory | appendlog | segment
               (default segment: indexed append-only segments with
               compaction and retention)
  --at         explain only: time-travel target in ms. Replays the
               retained windows up to the one current at that instant
               and prints the decision chain as it stood then
  --addr       listen address for serve (default 127.0.0.1:7878; port 0
               picks an ephemeral port)
  --addr-file  write the actually-bound address to a file (for scripts)

ENGINE TUNING (results are bit-identical across all settings):
  --workers N  worker threads for the kernel and merge phases (default:
               the ROLECLASS_THREADS environment variable, else one per
               CPU core)
  --no-prune   disable common-neighbor pair pruning in the counting
               kernel (diagnostic; pruning never changes results)

WIRE INGESTION (the probe→aggregator transport):
  ingest listen  accept framed flow-record streams over TCP, classify
                 each completed window, and print the run summary; stops
                 when every probe session ends (or after --max-windows)
  probe send     replay a capture into a listener, window by window,
                 with acknowledged go-back-N delivery
  --probe        probe/session name (must match on both ends; default
                 \"probe\")
  --to           listener address for probe send
  --origin-ms    start of the first window (default 0; must match on
                 both ends)
  --max-windows  listener hard stop after N windows (guards against a
                 sender that never finishes its session)
";

/// Parsed common options.
struct Options {
    input: Option<String>,
    format: Option<String>,
    snapshot: Option<String>,
    dot: Option<String>,
    prev: Option<String>,
    curr: Option<String>,
    min_flows: u64,
    auto_k_hi: bool,
    trace: bool,
    json: bool,
    window_ms: Option<u64>,
    host: Option<String>,
    group: Option<String>,
    /// `--state <DIR>`: root of the durable storage stack (run history,
    /// flight journal, checkpoints). Absent, nothing is persisted.
    state: Option<String>,
    /// `--store <BACKEND>`: which [`BackendKind`] serves `--state`.
    store: Option<String>,
    /// `--at <MS>`: the instant to time-travel to (explain replays the
    /// retained windows up to the one current at this timestamp).
    at: Option<u64>,
    addr: Option<String>,
    addr_file: Option<String>,
    max_requests: Option<u64>,
    to: Option<String>,
    probe_name: Option<String>,
    origin_ms: Option<u64>,
    max_windows: Option<u64>,
    /// `--hosts N`: population of the synthetic profiling workload
    /// (profile only, when no `--input` capture is given).
    hosts: Option<usize>,
    /// `--windows N`: how many windows the profiling workload runs.
    windows: Option<u64>,
    /// `--collapsed <FILE>`: write the span forest as collapsed-stack
    /// lines (flamegraph input) to this file.
    collapsed: Option<String>,
    params: Params,
    /// Worker threads for the kernel and merge phases. `--workers` wins;
    /// absent that, the `ROLECLASS_THREADS` environment variable is
    /// consulted **here, once** (libraries never read the environment);
    /// absent both, the machine decides.
    workers: Option<usize>,
    /// `--no-prune` turns kernel pair pruning off.
    no_prune: bool,
}

impl Options {
    /// The engine configuration every subcommand runs with: tuning
    /// parameters plus execution knobs, resolved from flags and the
    /// `ROLECLASS_THREADS` fallback.
    fn engine_config(&self) -> EngineConfig {
        EngineConfig::new(self.params)
            .with_workers(self.workers.unwrap_or(0))
            .with_prune(if self.no_prune {
                PruneMode::Off
            } else {
                PruneMode::Auto
            })
    }
}

fn parse_options(args: &[String]) -> Result<Options, CliError> {
    let mut o = Options {
        input: None,
        format: None,
        snapshot: None,
        dot: None,
        prev: None,
        curr: None,
        min_flows: 1,
        auto_k_hi: false,
        trace: false,
        json: false,
        window_ms: None,
        host: None,
        group: None,
        state: None,
        store: None,
        at: None,
        addr: None,
        addr_file: None,
        max_requests: None,
        to: None,
        probe_name: None,
        origin_ms: None,
        max_windows: None,
        hosts: None,
        windows: None,
        collapsed: None,
        params: Params::default(),
        workers: None,
        no_prune: false,
    };
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut value = |name: &str| {
            it.next()
                .cloned()
                .ok_or_else(|| CliError::usage(format!("{name} requires a value")))
        };
        match flag.as_str() {
            "--input" => o.input = Some(value("--input")?),
            "--format" => o.format = Some(value("--format")?),
            "--snapshot" => o.snapshot = Some(value("--snapshot")?),
            "--dot" => o.dot = Some(value("--dot")?),
            "--prev" => o.prev = Some(value("--prev")?),
            "--curr" => o.curr = Some(value("--curr")?),
            "--auto-k-hi" => o.auto_k_hi = true,
            "--trace" => o.trace = true,
            "--json" => o.json = true,
            "--host" => o.host = Some(value("--host")?),
            "--group" => o.group = Some(value("--group")?),
            "--state" => o.state = Some(value("--state")?),
            "--store" => o.store = Some(value("--store")?),
            "--at" => {
                o.at = Some(
                    value("--at")?
                        .parse()
                        .map_err(|_| CliError::usage("--at expects a timestamp in ms"))?,
                )
            }
            "--addr" => o.addr = Some(value("--addr")?),
            "--addr-file" => o.addr_file = Some(value("--addr-file")?),
            "--to" => o.to = Some(value("--to")?),
            "--probe" => o.probe_name = Some(value("--probe")?),
            "--origin-ms" => {
                o.origin_ms = Some(
                    value("--origin-ms")?
                        .parse()
                        .map_err(|_| CliError::usage("--origin-ms expects an integer"))?,
                )
            }
            "--max-windows" => {
                o.max_windows = Some(
                    value("--max-windows")?
                        .parse()
                        .map_err(|_| CliError::usage("--max-windows expects an integer"))?,
                )
            }
            "--max-requests" => {
                o.max_requests = Some(
                    value("--max-requests")?
                        .parse()
                        .map_err(|_| CliError::usage("--max-requests expects an integer"))?,
                )
            }
            "--window-ms" => {
                o.window_ms = Some(
                    value("--window-ms")?
                        .parse()
                        .map_err(|_| CliError::usage("--window-ms expects an integer"))?,
                )
            }
            "--min-flows" => {
                o.min_flows = value("--min-flows")?
                    .parse()
                    .map_err(|_| CliError::usage("--min-flows expects an integer"))?
            }
            "--s-lo" => {
                o.params.s_lo = value("--s-lo")?
                    .parse()
                    .map_err(|_| CliError::usage("--s-lo expects a number"))?
            }
            "--s-hi" => {
                o.params.s_hi = value("--s-hi")?
                    .parse()
                    .map_err(|_| CliError::usage("--s-hi expects a number"))?
            }
            "--k-hi" => {
                o.params.k_hi = value("--k-hi")?
                    .parse()
                    .map_err(|_| CliError::usage("--k-hi expects an integer"))?
            }
            "--alpha" => {
                o.params.alpha = value("--alpha")?
                    .parse()
                    .map_err(|_| CliError::usage("--alpha expects a number"))?
            }
            "--beta" => {
                o.params.beta = value("--beta")?
                    .parse()
                    .map_err(|_| CliError::usage("--beta expects a number"))?
            }
            "--hosts" => {
                o.hosts = Some(
                    value("--hosts")?
                        .parse()
                        .map_err(|_| CliError::usage("--hosts expects an integer"))?,
                )
            }
            "--windows" => {
                o.windows = Some(
                    value("--windows")?
                        .parse()
                        .map_err(|_| CliError::usage("--windows expects an integer"))?,
                )
            }
            "--collapsed" => o.collapsed = Some(value("--collapsed")?),
            "--workers" => {
                o.workers = Some(
                    value("--workers")?
                        .parse()
                        .map_err(|_| CliError::usage("--workers expects an integer"))?,
                )
            }
            "--no-prune" => o.no_prune = true,
            other => return Err(CliError::usage(format!("unknown flag {other:?}"))),
        }
    }
    if o.workers.is_none() {
        // The env var survives as a CLI-layer fallback only; nothing in
        // the libraries reads the environment.
        if let Ok(v) = std::env::var("ROLECLASS_THREADS") {
            o.workers = Some(
                v.parse()
                    .map_err(|_| CliError::usage("ROLECLASS_THREADS must be an integer"))?,
            );
        }
    }
    o.params
        .validate()
        .map_err(|e| CliError::usage(e.to_string()))?;
    Ok(o)
}

/// Infers the input format from an explicit flag or the file extension.
fn resolve_format(path: &str, explicit: Option<&str>) -> String {
    if let Some(f) = explicit {
        return f.to_string();
    }
    match Path::new(path)
        .extension()
        .and_then(|e| e.to_str())
        .unwrap_or("")
        .to_ascii_lowercase()
        .as_str()
    {
        "nf" | "netflow" => "netflow".into(),
        "pcap" | "cap" => "pcap".into(),
        "rmon" => "rmon".into(),
        _ => "text".into(),
    }
}

/// Loads flow records from a file in the given format.
fn load_records(path: &str, format: &str) -> Result<Vec<FlowRecord>, CliError> {
    let fail = |e: &dyn std::fmt::Display| CliError::runtime(format!("{path}: {e}"));
    match format {
        "text" => {
            let text = std::fs::read_to_string(path).map_err(|e| fail(&e))?;
            textlog::parse(&text).map_err(|e| fail(&e))
        }
        "rmon" => {
            let text = std::fs::read_to_string(path).map_err(|e| fail(&e))?;
            rmon::parse(&text).map_err(|e| fail(&e))
        }
        "netflow" => {
            let bytes = std::fs::read(path).map_err(|e| fail(&e))?;
            netflow::parse_stream(&bytes).map_err(|e| fail(&e))
        }
        "pcap" => {
            let bytes = std::fs::read(path).map_err(|e| fail(&e))?;
            Ok(pcap::parse_file(&bytes).map_err(|e| fail(&e))?.records)
        }
        other => Err(CliError::usage(format!(
            "unknown format {other:?} (expected text|netflow|pcap|rmon)"
        ))),
    }
}

/// A capture loaded through the shared `--input`/`--format` surface,
/// with the time bounds every windowed subcommand derives.
struct LoadedTrace {
    input: String,
    records: Vec<FlowRecord>,
    /// Start of the earliest record (0 on an empty trace).
    origin_ms: u64,
    /// Start of the latest record (0 on an empty trace).
    last_ms: u64,
}

impl LoadedTrace {
    /// `--window-ms`, defaulting to one window spanning the whole trace.
    fn window_ms(&self, o: &Options) -> u64 {
        o.window_ms
            .unwrap_or(self.last_ms - self.origin_ms + 1)
            .max(1)
    }
}

/// Loads `--input` in its (resolved) format — the parsing block every
/// record-consuming subcommand shares. `require_records` distinguishes
/// the replay commands (which cannot window an empty trace) from plain
/// `info`/`classify`.
fn load_trace(o: &Options, require_records: bool) -> Result<LoadedTrace, CliError> {
    let input = o
        .input
        .as_deref()
        .ok_or_else(|| CliError::usage("--input is required"))?
        .to_string();
    let format = resolve_format(&input, o.format.as_deref());
    let records = load_records(&input, &format)?;
    if require_records && records.is_empty() {
        return Err(CliError::runtime(format!("{input}: no flow records")));
    }
    let origin_ms = records.iter().map(|r| r.start_ms).min().unwrap_or(0);
    let last_ms = records.iter().map(|r| r.start_ms).max().unwrap_or(0);
    Ok(LoadedTrace {
        input,
        records,
        origin_ms,
        last_ms,
    })
}

fn load_connsets(o: &Options) -> Result<ConnectionSets, CliError> {
    let trace = load_trace(o, false)?;
    let mut builder = ConnsetBuilder::new().min_flows(o.min_flows);
    builder.add_records(trace.records.iter());
    Ok(builder.build())
}

fn load_snapshot(path: &str) -> Result<Snapshot, CliError> {
    let text =
        std::fs::read_to_string(path).map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
    serde_json::from_str(&text).map_err(|e| CliError::runtime(format!("{path}: {e}")))
}

fn save_snapshot(path: &str, snap: &Snapshot) -> Result<(), CliError> {
    let json = serde_json::to_string_pretty(snap).map_err(|e| CliError::runtime(e.to_string()))?;
    std::fs::write(path, json).map_err(|e| CliError::runtime(format!("{path}: {e}")))
}

fn render_grouping(out: &mut String, grouping: &Grouping) {
    use std::fmt::Write as _;
    let _ = writeln!(
        out,
        "{} hosts in {} groups:",
        grouping.host_count(),
        grouping.group_count()
    );
    for g in grouping.largest(usize::MAX) {
        let preview: Vec<String> = g.members.iter().take(5).map(|m| m.to_string()).collect();
        let ellipsis = if g.len() > 5 { ", ..." } else { "" };
        let _ = writeln!(
            out,
            "  group {:>4}  K={:<4} {:>5} host(s): {}{}",
            g.id.to_string(),
            g.k,
            g.len(),
            preview.join(", "),
            ellipsis
        );
    }
}

/// Builds the classification engine, with a recorder attached when the
/// user asked for `--trace`.
fn build_engine(o: &Options) -> Result<(Engine, Option<Arc<Recorder>>), CliError> {
    let mut engine =
        Engine::from_config(o.engine_config()).map_err(|e| CliError::usage(e.to_string()))?;
    let recorder = o.trace.then(|| Arc::new(Recorder::new()));
    if let Some(r) = &recorder {
        engine.set_recorder(Some(Arc::clone(r)));
    }
    Ok((engine, recorder))
}

/// Appends the recorded span tree (if any) to the command output.
fn append_trace(out: &mut String, recorder: Option<&Recorder>) {
    if let Some(r) = recorder {
        out.push_str("\ntrace:\n");
        out.push_str(&r.render_spans());
    }
}

/// The [`StorageConfig`] described by `--state`/`--store`, if any.
/// `--store` alone is a usage error: a backend choice without a root
/// directory persists nothing, which is never what the user meant.
fn storage_config(o: &Options) -> Result<Option<StorageConfig>, CliError> {
    let Some(state) = o.state.as_deref() else {
        if o.store.is_some() {
            return Err(CliError::usage("--store requires --state <DIR>"));
        }
        return Ok(None);
    };
    let mut config = StorageConfig::new(state);
    if let Some(name) = o.store.as_deref() {
        let kind = BackendKind::parse(name).ok_or_else(|| {
            CliError::usage(format!(
                "unknown storage backend {name:?} (expected memory|appendlog|segment)"
            ))
        })?;
        config = config.with_backend(kind);
    }
    Ok(Some(config))
}

/// Opens the storage stack at `--state` (creating the directory tree).
fn open_stack(config: &StorageConfig) -> Result<StorageStack, CliError> {
    StorageStack::open(config)
        .map_err(|e| CliError::runtime(format!("storage at {}: {e}", config.root)))
}

/// Result of replaying a capture through the full aggregator pipeline
/// with a recorder attached — shared by `metrics` and `serve`.
struct Replay {
    recorder: Arc<Recorder>,
    windows: usize,
    reports: Vec<ProbeReport>,
    health: Option<WindowHealth>,
    /// One stability row per completed window, in window order.
    stability: Vec<WindowStability>,
    /// Per-host churn table, most churned first.
    churn: Vec<HostChurn>,
    /// The aggregator's stability timeseries ring (shared handle).
    timeseries: Arc<TimeseriesRing>,
    /// The durable run history, when `--state` was given — what serve's
    /// `/history` endpoint answers from.
    runs: Option<Arc<RunStore>>,
}

/// Replays `--input` through the aggregator, windowed by `--window-ms`
/// (default: the whole trace as one window). With `--state`, the full
/// storage stack rides along: every window lands in the run history,
/// every event in the durable flight journal, and a checkpoint is cut
/// at the end, so later `explain --at` / `serve` invocations can time
/// travel into this run.
fn replay_pipeline(o: &Options) -> Result<Replay, CliError> {
    let trace = load_trace(o, true)?;
    let window_ms = trace.window_ms(o);
    let recorder = Arc::new(Recorder::new());
    let stack = match storage_config(o)? {
        Some(config) => Some(open_stack(&config)?),
        None => None,
    };
    let mut agg = Aggregator::try_new(AggregatorConfig {
        window_ms,
        origin_ms: trace.origin_ms,
        engine: o.engine_config(),
        min_flows: o.min_flows,
        supervisor: SupervisorConfig::immediate(),
        ..AggregatorConfig::default()
    })
    .map_err(|e| CliError::usage(e.to_string()))?
    .with_recorder(Arc::clone(&recorder));
    if let Some(stack) = &stack {
        agg = agg
            .with_shared_flight_recorder(Arc::clone(stack.recorder()))
            .with_run_store(Arc::clone(stack.runs()));
    }
    agg.attach(Box::new(ReplayProbe::new(&trace.input, trace.records)));
    let windows = agg.drain();
    let reports = agg.probe_reports();
    let health = agg.history().read().last().map(|r| r.health.clone());
    let runs = match &stack {
        Some(stack) => {
            agg.checkpoint(stack.checkpointer())
                .map_err(|e| CliError::runtime(format!("checkpoint: {e}")))?;
            stack
                .flush()
                .map_err(|e| CliError::runtime(format!("storage flush: {e}")))?;
            Some(Arc::clone(stack.runs()))
        }
        None => None,
    };
    Ok(Replay {
        recorder,
        windows,
        reports,
        health,
        stability: agg.stability_history().to_vec(),
        churn: agg.churn_table(),
        timeseries: agg.timeseries(),
        runs,
    })
}

/// The windows `rcctl profile` runs: the `--input` capture split by
/// `--window-ms`, or, without one, a synthetic department-structured
/// network sized by `--hosts` traced over `--windows` day-long windows.
fn profile_windows(o: &Options) -> Result<Vec<ConnectionSets>, CliError> {
    if o.input.is_some() {
        if o.hosts.is_some() {
            return Err(CliError::usage(
                "--hosts sizes the synthetic workload and conflicts with --input",
            ));
        }
        return window_connsets(o);
    }
    const DAY_MS: u64 = 86_400_000;
    let hosts = o.hosts.unwrap_or(5_000);
    let windows = o.windows.unwrap_or(3).max(1);
    let model = crate::synthnet::scenarios::department(hosts, 7).connsets;
    Ok((0..windows)
        .map(|w| {
            let opts = crate::synthnet::trace::TraceOptions {
                start_ms: w * DAY_MS,
                span_ms: DAY_MS,
                ..crate::synthnet::trace::TraceOptions::default()
            };
            let records = crate::synthnet::trace::expand(&model, opts, 7 + w);
            let mut builder = ConnsetBuilder::new().min_flows(o.min_flows);
            builder.add_records(records.iter());
            builder.build()
        })
        .collect())
}

/// Splits a capture into per-window connection sets for `explain`.
fn window_connsets(o: &Options) -> Result<Vec<ConnectionSets>, CliError> {
    let trace = load_trace(o, true)?;
    let window_ms = trace.window_ms(o);
    let origin_ms = trace.origin_ms;
    let count = ((trace.last_ms - origin_ms) / window_ms + 1) as usize;
    let mut buckets: Vec<Vec<&FlowRecord>> = vec![Vec::new(); count];
    for r in &trace.records {
        buckets[((r.start_ms - origin_ms) / window_ms) as usize].push(r);
    }
    Ok(buckets
        .into_iter()
        .map(|bucket| {
            let mut builder = ConnsetBuilder::new().min_flows(o.min_flows);
            builder.add_records(bucket);
            builder.build()
        })
        .collect())
}

/// Runs the CLI. Returns the text to print on stdout.
pub fn run(args: &[String]) -> Result<String, CliError> {
    let Some((cmd, rest)) = args.split_first() else {
        return Err(CliError::usage(USAGE));
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(USAGE.to_string()),
        "info" => {
            let o = parse_options(rest)?;
            let cs = load_connsets(&o)?;
            let mut out = String::new();
            use std::fmt::Write as _;
            let _ = writeln!(out, "hosts:       {}", cs.host_count());
            let _ = writeln!(out, "connections: {}", cs.connection_count());
            let _ = writeln!(out, "max degree:  {}", cs.max_degree());
            let _ = writeln!(out, "suggested K^hi (otsu): {}", auto_k_hi_otsu(&cs));
            Ok(out)
        }
        "classify" => {
            let mut o = parse_options(rest)?;
            let cs = load_connsets(&o)?;
            if o.auto_k_hi {
                o.params.k_hi = auto_k_hi_otsu(&cs).max(1);
            }
            let (engine, recorder) = build_engine(&o)?;
            let result = engine.classify(&cs);
            let mut out = String::new();
            render_grouping(&mut out, &result.grouping);
            if let Some(dot) = &o.dot {
                std::fs::write(dot, result.to_dot("role-groups"))
                    .map_err(|e| CliError::runtime(format!("{dot}: {e}")))?;
                out.push_str(&format!("wrote {dot}\n"));
            }
            if let Some(path) = &o.snapshot {
                save_snapshot(
                    path,
                    &Snapshot {
                        connsets: cs,
                        grouping: result.grouping,
                    },
                )?;
                out.push_str(&format!("wrote {path}\n"));
            }
            append_trace(&mut out, recorder.as_deref());
            Ok(out)
        }
        "correlate" => {
            let mut o = parse_options(rest)?;
            let prev_path = o
                .prev
                .as_deref()
                .ok_or_else(|| CliError::usage("--prev is required"))?
                .to_string();
            let prev = load_snapshot(&prev_path)?;
            let cs = load_connsets(&o)?;
            if o.auto_k_hi {
                o.params.k_hi = auto_k_hi_otsu(&cs).max(1);
            }
            let (mut engine, recorder) = build_engine(&o)?;
            engine.set_previous(Some(EngineSnapshot {
                connsets: prev.connsets,
                grouping: prev.grouping.clone(),
            }));
            let outcome = engine.run_window(&cs);
            let corr = outcome
                .correlation
                .expect("previous snapshot was set, so run_window correlates");
            let renamed = outcome.grouping;
            let mut out = String::new();
            use std::fmt::Write as _;
            let _ = writeln!(
                out,
                "correlated {} of {} groups ({} new, {} vanished)",
                corr.id_map.len(),
                renamed.group_count(),
                corr.new_groups.len(),
                corr.vanished_groups.len()
            );
            render_grouping(&mut out, &renamed);
            out.push_str(&diff_groupings(&prev.grouping, &renamed).render());
            if let Some(path) = &o.snapshot {
                save_snapshot(
                    path,
                    &Snapshot {
                        connsets: cs,
                        grouping: renamed,
                    },
                )?;
                out.push_str(&format!("wrote {path}\n"));
            }
            append_trace(&mut out, recorder.as_deref());
            Ok(out)
        }
        "metrics" => {
            let o = parse_options(rest)?;
            let replay = replay_pipeline(&o)?;
            let Replay {
                recorder,
                windows,
                reports,
                ..
            } = replay;
            if o.json {
                let probes = serde_json::to_string(&reports)
                    .map_err(|e| CliError::runtime(e.to_string()))?;
                return Ok(format!(
                    "{{\"windows\":{windows},\"metrics\":{},\"spans\":{},\"probes\":{probes}}}\n",
                    recorder.registry().json_snapshot(),
                    telemetry::span_tree_json(&recorder.spans()),
                ));
            }
            let mut out = String::new();
            use std::fmt::Write as _;
            let _ = writeln!(out, "windows: {windows}");
            for r in &reports {
                let _ = writeln!(
                    out,
                    "probe {:<20} {:?}: polled={} failed={} skipped={} retries={} records={}",
                    r.name,
                    r.health,
                    r.stats.windows_polled,
                    r.stats.windows_failed,
                    r.stats.windows_skipped,
                    r.stats.retries,
                    r.stats.records_delivered
                );
            }
            out.push('\n');
            out.push_str(&recorder.registry().prometheus_text());
            if o.trace {
                append_trace(&mut out, Some(&recorder));
            }
            Ok(out)
        }
        "explain" => {
            let mut o = parse_options(rest)?;
            let host: HostAddr = o
                .host
                .as_deref()
                .ok_or_else(|| CliError::usage("--host is required"))?
                .parse()
                .map_err(|e| CliError::usage(format!("--host: {e}")))?;
            // Time travel: with --state the windows come from the
            // retained run history, not a fresh capture. The replay
            // includes every retained window up to the target so the
            // id-lineage chain is the one the store actually observed.
            if let Some(config) = storage_config(&o)? {
                let stack = open_stack(&config)?;
                let cutoff = o.at.unwrap_or(u64::MAX);
                let runs = stack
                    .runs()
                    .all()
                    .map_err(|e| CliError::runtime(format!("run history: {e}")))?;
                let total = runs.len();
                let runs: Vec<_> = runs
                    .into_iter()
                    .filter(|r| r.window.start_ms <= cutoff)
                    .collect();
                if runs.is_empty() {
                    return Err(CliError::runtime(match o.at {
                        Some(at) if total > 0 => {
                            format!("no retained window starts at or before {at} ms")
                        }
                        _ => format!("{}: run history is empty", config.root),
                    }));
                }
                if o.auto_k_hi {
                    o.params.k_hi = auto_k_hi_otsu(&runs[0].connsets).max(1);
                }
                let labeled: Vec<(String, &ConnectionSets)> = runs
                    .iter()
                    .map(|r| {
                        (
                            format!("window [{}, {})", r.window.start_ms, r.window.end_ms),
                            &r.connsets,
                        )
                    })
                    .collect();
                let header = format!(
                    "replaying {} retained window(s) from the {} store at {}\n",
                    labeled.len(),
                    stack.backend().name(),
                    config.root
                );
                return explain_host_labeled(&labeled, host, o.params)
                    .map(|out| format!("{header}{out}"))
                    .map_err(|e| CliError::usage(e.to_string()));
            }
            if o.at.is_some() {
                return Err(CliError::usage("--at requires --state <DIR>"));
            }
            let windows = window_connsets(&o)?;
            if o.auto_k_hi {
                o.params.k_hi = auto_k_hi_otsu(&windows[0]).max(1);
            }
            explain_host(&windows, host, o.params).map_err(|e| CliError::usage(e.to_string()))
        }
        "stability" => {
            let o = parse_options(rest)?;
            let host: Option<HostAddr> = o
                .host
                .as_deref()
                .map(|h| h.parse())
                .transpose()
                .map_err(|e| CliError::usage(format!("--host: {e}")))?;
            let group: Option<GroupId> = o
                .group
                .as_deref()
                .map(|g| g.parse::<u32>().map(GroupId))
                .transpose()
                .map_err(|_| CliError::usage("--group expects a numeric group id"))?;
            let replay = replay_pipeline(&o)?;
            if o.json {
                let rows = serde_json::to_string(&replay.stability)
                    .map_err(|e| CliError::runtime(e.to_string()))?;
                let churn = serde_json::to_string(&replay.churn)
                    .map_err(|e| CliError::runtime(e.to_string()))?;
                return Ok(format!(
                    "{{\"windows\":{},\"rows\":{rows},\"churn\":{churn}}}\n",
                    replay.windows
                ));
            }
            let mut out = String::new();
            stability_report::render_windows(&mut out, &replay.stability);
            stability_report::render_groups(&mut out, &replay.stability, group);
            if let Some(id) = group {
                stability_report::render_group_trajectory(&mut out, &replay.stability, id);
            }
            stability_report::render_churn(&mut out, &replay.churn, host);
            Ok(out)
        }
        "profile" => {
            let o = parse_options(rest)?;
            let windows = profile_windows(&o)?;
            let recorder = Arc::new(Recorder::new());
            let mut engine = Engine::from_config(o.engine_config())
                .map_err(|e| CliError::usage(e.to_string()))?;
            engine.set_recorder(Some(Arc::clone(&recorder)));
            let mut hosts = 0;
            for cs in &windows {
                hosts = hosts.max(cs.host_count());
                engine.run_window(cs);
            }
            let profile = recorder.profile();
            let mut wrote = None;
            if let Some(path) = &o.collapsed {
                let folded = recorder.collapsed_spans();
                std::fs::write(path, &folded)
                    .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
                wrote = Some((path.clone(), folded.lines().count()));
            }
            if o.json {
                return Ok(format!(
                    "{{\"windows\":{},\"hosts\":{hosts},\"profile\":{}}}\n",
                    windows.len(),
                    profile.to_json()
                ));
            }
            let mut out = String::new();
            use std::fmt::Write as _;
            let _ = writeln!(
                out,
                "profiled {} window(s) over {hosts} host(s)\n",
                windows.len()
            );
            out.push_str(&profile.render());
            if let Some((path, lines)) = wrote {
                let _ = writeln!(out, "\nwrote {lines} collapsed stack line(s) to {path}");
            }
            Ok(out)
        }
        "serve" => {
            let o = parse_options(rest)?;
            let replay = replay_pipeline(&o)?;
            let state = ServerState {
                recorder: replay.recorder,
                windows: replay.windows,
                health: replay.health,
                stability: replay.stability,
                timeseries: replay.timeseries,
                history: replay.runs,
            };
            let addr = o.addr.as_deref().unwrap_or("127.0.0.1:7878");
            let server = Server::bind(addr, state)
                .map_err(|e| CliError::runtime(format!("bind {addr}: {e}")))?;
            let bound = server
                .local_addr()
                .map_err(|e| CliError::runtime(e.to_string()))?;
            if let Some(path) = &o.addr_file {
                std::fs::write(path, bound.to_string())
                    .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
            }
            // Announce before blocking in the accept loop; the final
            // return value only prints after the server stops.
            println!(
                "serving http://{bound} (/metrics /events /stability /history /profile /healthz)"
            );
            let served = server
                .run(o.max_requests)
                .map_err(|e| CliError::runtime(e.to_string()))?;
            Ok(format!("served {served} request(s)\n"))
        }
        "probe" => match rest.split_first() {
            Some((sub, rest)) if sub == "send" => {
                let o = parse_options(rest)?;
                let trace = load_trace(&o, true)?;
                let to =
                    o.to.as_deref()
                        .ok_or_else(|| CliError::usage("--to is required"))?;
                use std::net::ToSocketAddrs as _;
                let addr = to
                    .to_socket_addrs()
                    .map_err(|e| CliError::usage(format!("--to {to}: {e}")))?
                    .next()
                    .ok_or_else(|| CliError::usage(format!("--to {to}: no address")))?;
                let probe = o.probe_name.as_deref().unwrap_or("probe");
                let origin_ms = o.origin_ms.unwrap_or(0);
                let window_ms = o.window_ms.unwrap_or(86_400_000).max(1);
                let stats = stream_records(
                    addr,
                    probe,
                    &trace.records,
                    origin_ms,
                    window_ms,
                    TransportConfig::default(),
                )
                .map_err(|e| CliError::runtime(format!("send to {to}: {e}")))?;
                Ok(format!(
                    "sent {} record(s) in {} window(s) as probe {probe:?}: \
                     {} frame(s), {} retransmit(s), {} reconnect(s), {} byte(s)\n",
                    stats.records_sent,
                    stats.windows_sent,
                    stats.frames_sent,
                    stats.retransmits,
                    stats.reconnects,
                    stats.bytes_sent
                ))
            }
            _ => Err(CliError::usage(format!(
                "probe requires the send subcommand\n\n{USAGE}"
            ))),
        },
        "ingest" => match rest.split_first() {
            Some((sub, rest)) if sub == "listen" => {
                let o = parse_options(rest)?;
                let probe = o.probe_name.as_deref().unwrap_or("probe").to_string();
                let addr = o.addr.as_deref().unwrap_or("127.0.0.1:7879");
                let window_ms = o.window_ms.unwrap_or(86_400_000).max(1);
                let recorder = Arc::new(Recorder::new());
                let listener = WireListener::bind(
                    addr,
                    TransportConfig::default(),
                    Some(Arc::clone(&recorder)),
                    None,
                )
                .map_err(|e| CliError::runtime(format!("bind {addr}: {e}")))?;
                let bound = listener.local_addr();
                if let Some(path) = &o.addr_file {
                    std::fs::write(path, bound.to_string())
                        .map_err(|e| CliError::runtime(format!("{path}: {e}")))?;
                }
                // Announce before blocking on the first window.
                println!("ingesting on {bound} (probe {probe:?})");
                let mut agg = Aggregator::try_new(AggregatorConfig {
                    window_ms,
                    origin_ms: o.origin_ms.unwrap_or(0),
                    engine: o.engine_config(),
                    min_flows: o.min_flows,
                    supervisor: SupervisorConfig::immediate(),
                    ..AggregatorConfig::default()
                })
                .map_err(|e| CliError::usage(e.to_string()))?
                .with_recorder(Arc::clone(&recorder));
                agg.attach(Box::new(listener.probe(&probe)));
                let cap = o.max_windows.unwrap_or(u64::MAX);
                let mut windows: u64 = 0;
                while windows < cap && agg.has_pending_data() {
                    agg.run_cycle();
                    windows += 1;
                }
                let mut out = String::new();
                use std::fmt::Write as _;
                let _ = writeln!(out, "windows: {windows}");
                {
                    let history = agg.history();
                    let history = history.read();
                    for run in history.iter() {
                        let _ = writeln!(
                            out,
                            "window [{}, {}): {} host(s) in {} group(s), {} record(s), {}",
                            run.window.start_ms,
                            run.window.end_ms,
                            run.grouping.host_count(),
                            run.grouping.group_count(),
                            run.health.records_accepted,
                            if run.health.degraded() {
                                "degraded"
                            } else {
                                "healthy"
                            }
                        );
                    }
                }
                for r in &agg.probe_reports() {
                    let _ = writeln!(
                        out,
                        "probe {:<20} {:?}: polled={} failed={} records={}",
                        r.name,
                        r.health,
                        r.stats.windows_polled,
                        r.stats.windows_failed,
                        r.stats.records_delivered
                    );
                }
                Ok(out)
            }
            _ => Err(CliError::usage(format!(
                "ingest requires the listen subcommand\n\n{USAGE}"
            ))),
        },
        "diff" => {
            let o = parse_options(rest)?;
            let prev = load_snapshot(
                o.prev
                    .as_deref()
                    .ok_or_else(|| CliError::usage("--prev is required"))?,
            )?;
            let curr = load_snapshot(
                o.curr
                    .as_deref()
                    .ok_or_else(|| CliError::usage("--curr is required"))?,
            )?;
            Ok(diff_groupings(&prev.grouping, &curr.grouping).render())
        }
        other => Err(CliError::usage(format!(
            "unknown command {other:?}\n\n{USAGE}"
        ))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn args(list: &[&str]) -> Vec<String> {
        list.iter().map(|s| s.to_string()).collect()
    }

    #[test]
    fn help_prints_usage() {
        let out = run(&args(&["help"])).unwrap();
        assert!(out.contains("rcctl"));
        assert!(out.contains("classify"));
    }

    #[test]
    fn unknown_command_is_usage_error() {
        let err = run(&args(&["frobnicate"])).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn missing_input_is_usage_error() {
        let err = run(&args(&["classify"])).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--input"));
    }

    #[test]
    fn bad_flag_values_are_usage_errors() {
        let err = run(&args(&["classify", "--s-lo", "abc"])).unwrap_err();
        assert!(err.message.contains("--s-lo"));
        let err = run(&args(&["classify", "--s-lo"])).unwrap_err();
        assert!(err.message.contains("requires a value"));
        let err = run(&args(&["classify", "--wat"])).unwrap_err();
        assert!(err.message.contains("unknown flag"));
    }

    #[test]
    fn invalid_params_rejected() {
        // s_lo above s_hi violates the paper's constraint.
        let err = run(&args(&["classify", "--s-lo", "90", "--s-hi", "80"])).unwrap_err();
        assert_eq!(err.code, 2);
    }

    #[test]
    fn profile_renders_table_collapsed_and_json() {
        let dir = std::env::temp_dir().join(format!("rcctl-profile-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let folded = dir.join("out.folded");
        let out = run(&args(&[
            "profile",
            "--hosts",
            "300",
            "--windows",
            "2",
            "--collapsed",
            folded.to_str().unwrap(),
        ]))
        .unwrap();
        assert!(out.contains("profiled 2 window(s)"), "{out}");
        for col in ["stage", "self ms", "alloc bytes", "allocs"] {
            assert!(out.contains(col), "missing column {col:?} in {out}");
        }
        for stage in ["engine.run_window", "engine.classify", "engine.correlate"] {
            assert!(out.contains(stage), "missing stage {stage:?} in {out}");
        }
        let text = std::fs::read_to_string(&folded).unwrap();
        assert!(!text.is_empty());
        for line in text.lines() {
            let (frames, _) = telemetry::parse_collapsed_line(line).expect(line);
            assert_eq!(frames[0], "roleclass");
        }

        let json = run(&args(&["profile", "--hosts", "300", "--json"])).unwrap();
        assert!(json.contains("\"windows\":3"), "{json}");
        assert!(json.contains("\"name\":\"engine.run_window\""), "{json}");
        assert!(json.contains("\"self_secs\""), "{json}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn profile_hosts_conflicts_with_input() {
        let err = run(&args(&["profile", "--input", "x.txt", "--hosts", "10"])).unwrap_err();
        assert_eq!(err.code, 2);
        assert!(err.message.contains("--hosts"), "{}", err.message);
    }

    #[test]
    fn format_resolution() {
        assert_eq!(resolve_format("a.pcap", None), "pcap");
        assert_eq!(resolve_format("a.cap", None), "pcap");
        assert_eq!(resolve_format("a.nf", None), "netflow");
        assert_eq!(resolve_format("a.rmon", None), "rmon");
        assert_eq!(resolve_format("a.txt", None), "text");
        assert_eq!(resolve_format("noext", None), "text");
        assert_eq!(resolve_format("a.pcap", Some("text")), "text");
    }
}
