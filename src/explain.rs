//! The `rcctl explain` decision-chain replay: why one host ended up in
//! its role group.
//!
//! Replays a capture window by window through the [`Engine`] with a
//! telemetry recorder attached, then reconstructs the full provenance
//! of one host from the typed decision events the engine emitted:
//!
//! * **formation** — the `k` level and mechanism (biconnected
//!   component, bootstrap, or leftover) that first grouped the host;
//! * **merging** — every merge the host's group was *considered* for,
//!   accepted and rejected alike, with the similarity score, which
//!   threshold gated it (`S^hi` when either side has `K ≥ K^hi`, else
//!   `S^lo`), and the connection-requirement verdict;
//! * **correlation** — where the window's published group id came from:
//!   carried from the previous window (with the matching rule and
//!   score), or minted fresh.
//!
//! The replay is the real pipeline — the same `run_window` calls a
//! monitoring deployment makes — so the explanation can never drift
//! from what the engine actually did.

use crate::flow::{ConnectionSets, HostAddr};
use crate::roleclass::{Engine, FormationKind, ParamError, Params};
use std::fmt::Write as _;
use std::sync::Arc;
use telemetry::{Event, FieldValue, Recorder};

/// Looks up a field on an event by key.
fn field<'a>(ev: &'a Event, key: &str) -> Option<&'a FieldValue> {
    ev.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
}

fn field_f64(ev: &Event, key: &str) -> f64 {
    match field(ev, key) {
        Some(FieldValue::F64(x)) => *x,
        Some(FieldValue::U64(x)) => *x as f64,
        _ => f64::NAN,
    }
}

fn field_u64(ev: &Event, key: &str) -> u64 {
    match field(ev, key) {
        Some(FieldValue::U64(x)) => *x,
        _ => 0,
    }
}

fn field_str<'a>(ev: &'a Event, key: &str) -> &'a str {
    match field(ev, key) {
        Some(FieldValue::Str(s)) => s,
        _ => "",
    }
}

/// One merge decision the host's group took part in, reconstructed from
/// a `roleclass_engine_merge_considered` event.
struct MergeLine {
    other_rep: String,
    other_size: u64,
    similarity: f64,
    gate: String,
    threshold: f64,
    verdict: String,
}

/// Walks the window's merge events, tracking group membership as merges
/// land, and returns the decisions that involved `host`'s group.
///
/// Groups are tracked as member sets seeded from the formation trace.
/// Each event names one representative member per side, so sides are
/// resolved by membership — the partition stays disjoint as merges
/// coarsen it, making the lookup unambiguous.
fn merge_chain(
    host: HostAddr,
    formation: &[crate::roleclass::FormationEvent],
    events: &[Event],
) -> Vec<MergeLine> {
    let mut groups: Vec<Vec<HostAddr>> = formation
        .iter()
        .map(|ev| {
            let mut m = ev.members.clone();
            m.sort();
            m
        })
        .collect();
    let mut out = Vec::new();
    for ev in events {
        if ev.name != "roleclass_engine_merge_considered" {
            continue;
        }
        let Ok(left) = field_str(ev, "left").parse::<HostAddr>() else {
            continue;
        };
        let Ok(right) = field_str(ev, "right").parse::<HostAddr>() else {
            continue;
        };
        let li = groups.iter().position(|g| g.binary_search(&left).is_ok());
        let ri = groups.iter().position(|g| g.binary_search(&right).is_ok());
        let (Some(li), Some(ri)) = (li, ri) else {
            continue;
        };
        let host_in_left = groups[li].binary_search(&host).is_ok();
        let host_in_right = groups[ri].binary_search(&host).is_ok();
        if host_in_left || host_in_right {
            let (other_rep, other_size) = if host_in_left {
                (right.to_string(), field_u64(ev, "right_size"))
            } else {
                (left.to_string(), field_u64(ev, "left_size"))
            };
            out.push(MergeLine {
                other_rep,
                other_size,
                similarity: field_f64(ev, "similarity"),
                gate: field_str(ev, "gate").to_string(),
                threshold: field_f64(ev, "threshold"),
                verdict: field_str(ev, "verdict").to_string(),
            });
        }
        if field_str(ev, "verdict") == "merged" {
            let merged = groups.remove(ri.max(li));
            let keep = ri.min(li);
            groups[keep].extend(merged);
            groups[keep].sort();
        }
    }
    out
}

/// Replays `windows` through the engine and renders the decision chain
/// for `host`: formation, every merge consideration, and group-id
/// lineage, per window. Invalid `params` are reported as the error
/// text, not a panic, so callers that skipped validation still get a
/// classified failure.
pub fn explain_host(
    windows: &[ConnectionSets],
    host: HostAddr,
    params: Params,
) -> Result<String, ParamError> {
    let labeled: Vec<(String, &ConnectionSets)> = windows
        .iter()
        .enumerate()
        .map(|(w, cs)| (format!("window {w}"), cs))
        .collect();
    explain_host_labeled(&labeled, host, params)
}

/// [`explain_host`] with caller-chosen window labels — what the
/// time-travel path uses to print real window bounds (`window
/// [0, 1000)`) instead of replay indices when the windows come from a
/// retained run history rather than a fresh capture split.
pub fn explain_host_labeled(
    windows: &[(String, &ConnectionSets)],
    host: HostAddr,
    params: Params,
) -> Result<String, ParamError> {
    let recorder = Arc::new(Recorder::new());
    let mut engine = Engine::new(params)?;
    engine.set_recorder(Some(Arc::clone(&recorder)));

    let mut out = String::new();
    let _ = writeln!(out, "decision chain for host {host}:");
    for (label, cs) in windows.iter() {
        let outcome = engine.run_window(cs);
        let events = recorder.events().take();
        let _ = writeln!(out, "\n{label}:");
        let raw = outcome.classification.grouping.group_of(host);
        let published = outcome.grouping.group_of(host);
        let (Some(raw), Some(published)) = (raw, published) else {
            let _ = writeln!(out, "  not observed in this window");
            continue;
        };

        // Formation: the group the host was first placed in.
        let formed = outcome
            .classification
            .formation_trace
            .iter()
            .find(|ev| ev.members.contains(&host));
        if let Some(ev) = formed {
            let how = match ev.kind {
                FormationKind::Bcc => "a biconnected component",
                FormationKind::Bootstrap => "the bootstrap rule (step 2e)",
                FormationKind::Leftover => "the leftover sweep (k=0)",
            };
            let _ = writeln!(
                out,
                "  formation: grouped at k={} by {} ({} member(s))",
                ev.k,
                how,
                ev.members.len()
            );
        }

        // Merging: every pair decision the host's group took part in.
        let chain = merge_chain(host, &outcome.classification.formation_trace, &events);
        if chain.is_empty() {
            let _ = writeln!(out, "  merging: no merges considered for this host's group");
        }
        for m in &chain {
            let gate = if m.gate == "s_hi" { "S^hi" } else { "S^lo" };
            let decision = match m.verdict.as_str() {
                "merged" => format!(
                    "similarity {:.2} >= {gate}={:.2} -> merged",
                    m.similarity, m.threshold
                ),
                "rejected_similarity" => format!(
                    "similarity {:.2} < {gate}={:.2} -> kept separate",
                    m.similarity, m.threshold
                ),
                _ => "connection requirement failed -> kept separate".to_string(),
            };
            let _ = writeln!(
                out,
                "  merge vs group of {} ({} host(s)): {decision}",
                m.other_rep, m.other_size
            );
        }

        // Correlation: where the published id came from.
        if outcome.correlation.is_none() {
            let _ = writeln!(
                out,
                "  identity: first window -> group id {published} assigned fresh"
            );
        } else if let Some(carried) = events.iter().find(|ev| {
            ev.name == "roleclass_engine_id_carried" && field_u64(ev, "curr") == u64::from(raw.0)
        }) {
            let _ = writeln!(
                out,
                "  identity: carried group id {published} from previous window (rule={}, score={:.2})",
                field_str(carried, "rule"),
                field_f64(carried, "score")
            );
        } else {
            let _ = writeln!(
                out,
                "  identity: no previous group matched -> minted fresh id {published}"
            );
        }
        let k = outcome
            .grouping
            .groups()
            .iter()
            .find(|g| g.id == published)
            .map_or(0, |g| g.k);
        let _ = writeln!(out, "  result: group {published} (K={k})");
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn h(x: u32) -> HostAddr {
        HostAddr::v4(x)
    }

    /// Figure 1 network: two 3-client pods sharing two servers.
    fn figure1() -> ConnectionSets {
        let mut cs = ConnectionSets::new();
        for s in [11, 12, 13] {
            cs.add_pair(h(s), h(1));
            cs.add_pair(h(s), h(2));
            cs.add_pair(h(s), h(3));
        }
        for e in [21, 22, 23] {
            cs.add_pair(h(e), h(1));
            cs.add_pair(h(e), h(2));
            cs.add_pair(h(e), h(4));
        }
        cs
    }

    fn params() -> Params {
        Params::default().with_s_lo(90.0).with_s_hi(95.0)
    }

    #[test]
    fn explains_formation_merges_and_lineage_across_windows() {
        let windows = vec![figure1(), figure1()];
        let out = explain_host(&windows, h(11), params()).unwrap();
        assert!(out.contains("decision chain for host 0.0.0.11"));
        assert!(out.contains("window 0:"));
        assert!(out.contains("window 1:"));
        assert!(out.contains("formation: grouped at k="));
        assert!(out.contains("merge vs group of"));
        assert!(out.contains("assigned fresh"));
        assert!(out.contains("carried group id"));
        assert!(out.contains("result: group"));
    }

    #[test]
    fn unobserved_host_is_reported_per_window() {
        let windows = vec![figure1()];
        let out = explain_host(&windows, h(99), params()).unwrap();
        assert!(out.contains("not observed in this window"));
    }

    #[test]
    fn merge_chain_includes_rejections() {
        // Default thresholds: the two pods' client groups are similar
        // enough to be considered but the figure-1 defaults merge them;
        // raising S^lo/S^hi forces a rejected_similarity verdict.
        let windows = vec![figure1()];
        let out = explain_host(
            &windows,
            h(11),
            Params::default().with_s_lo(99.0).with_s_hi(99.5),
        )
        .unwrap();
        // Either the host's group had merges rejected, or no merge was
        // considered at all — both must render without panicking.
        assert!(out.contains("window 0:"));
    }
}
