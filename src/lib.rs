//! Umbrella crate for the role-classification workspace.
//!
//! Re-exports the public API of every member crate so examples and
//! downstream users can depend on a single package. See the individual
//! crates for detailed documentation:
//!
//! * [`roleclass`] — the grouping and correlation algorithms (the paper's
//!   contribution).
//! * [`flow`] — flow records, connection sets, and parsers.
//! * [`netgraph`] — the graph substrate.
//! * [`synthnet`] — synthetic enterprise networks with ground truth.
//! * [`cluster`] — baselines and cluster-validation metrics.
//! * [`aggregator`] — the probe/aggregator monitoring system.
//! * [`storage`] — the pluggable storage backends behind checkpoints,
//!   the flight journal, and time-travel run history.

pub mod cli;
pub mod explain;
pub mod serve;
pub mod stability_report;

pub use aggregator;
pub use cluster;
pub use flow;
pub use netgraph;
pub use roleclass;
pub use storage;
pub use synthnet;
pub use telemetry;
