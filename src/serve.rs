//! The `rcctl serve` HTTP endpoint: metrics, events, and health over a
//! zero-dependency `std::net` listener.
//!
//! Serves four read-only views of one pipeline run:
//!
//! * `GET /metrics` — the telemetry registry in Prometheus exposition
//!   format (`text/plain; version=0.0.4`), scrapeable as-is.
//! * `GET /events` — the in-memory event journal as JSONL
//!   (`application/x-ndjson`), one structured event per line;
//!   `?tail=N` limits the response to the newest `N` events.
//! * `GET /stability` — the stability observatory: a JSON snapshot of
//!   per-window [`WindowStability`] rows (`?tail=N` keeps the newest
//!   `N`), or with `?follow` the bounded timeseries ring as NDJSON,
//!   one metric frame per completed window.
//! * `GET /history` — the durable run history: one [`RunSummary`] per
//!   retained window (`?tail=N` keeps the newest `N`), or with `?at=MS`
//!   the full run record current at that instant — the time-travel
//!   query. Answers `503` unless the pipeline ran with `--state`.
//! * `GET /profile` — the aggregated span profile of the replayed run
//!   (per-stage call counts, total/self wall time, allocation tallies)
//!   as JSON, or with `?collapsed` the same spans as collapsed-stack
//!   lines (`text/plain`) ready for flamegraph tooling.
//! * `GET /healthz` — the [`WindowHealth`] of the last completed cycle
//!   as JSON, `503` until a cycle has completed.
//!
//! `/events`, `/stability`, and `/profile` share one query-string
//! parser: a malformed `tail`, an unknown parameter, or `follow` on an
//! endpoint that cannot stream is an explicit `400`, never silently
//! ignored.
//!
//! The server is deliberately minimal: blocking accept loop, one
//! request per connection (`Connection: close`), request line plus
//! drained headers, GET only. That keeps it inside the standard
//! library while still being a conformant scrape target.
//!
//! It is also defensive: every connection gets a read *and* write
//! deadline (a half-open client cannot park the accept loop), and the
//! request line plus headers are capped at
//! [`ServerConfig::max_header_bytes`] — an oversized request is
//! answered `431` instead of buffered without bound. GETs carry no
//! body, so the header cap bounds the whole request.

use crate::aggregator::{RunStore, RunSummary, WindowHealth};
use crate::roleclass::WindowStability;
use std::io::{self, BufRead, BufReader, Read as _, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::time::Duration;
use telemetry::{Recorder, TimeseriesRing};

/// Per-connection limits for the HTTP listener.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Deadline for reading the request (request line + headers). A
    /// client that connects and goes silent is dropped when it expires.
    pub read_timeout: Duration,
    /// Deadline for writing the response.
    pub write_timeout: Duration,
    /// Upper bound on request line + headers; beyond it the request is
    /// answered `431 Request Header Fields Too Large`.
    pub max_header_bytes: u64,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            read_timeout: Duration::from_secs(5),
            write_timeout: Duration::from_secs(5),
            max_header_bytes: 8192,
        }
    }
}

/// What the server exposes: a recorder (metrics registry + event
/// journal) and the outcome of the replayed pipeline.
pub struct ServerState {
    /// Recorder whose registry backs `/metrics` and whose journal backs
    /// `/events`.
    pub recorder: Arc<Recorder>,
    /// Number of completed classification windows.
    pub windows: usize,
    /// Input health of the last completed window, if any.
    pub health: Option<WindowHealth>,
    /// One stability row per completed window, in window order — the
    /// `/stability` snapshot body.
    pub stability: Vec<WindowStability>,
    /// The aggregator's bounded stability timeseries ring — the
    /// `/stability?follow` NDJSON stream.
    pub timeseries: Arc<TimeseriesRing>,
    /// The durable run history behind `/history`, when the pipeline ran
    /// with a storage stack attached; `None` answers `503`.
    pub history: Option<Arc<RunStore>>,
}

/// A bound listener ready to serve [`ServerState`].
pub struct Server {
    listener: TcpListener,
    state: ServerState,
    config: ServerConfig,
}

impl Server {
    /// Binds `addr` (e.g. `127.0.0.1:7878`; port `0` picks an ephemeral
    /// port, readable back via [`Server::local_addr`]) with default
    /// [`ServerConfig`] limits.
    pub fn bind(addr: &str, state: ServerState) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        Ok(Server {
            listener,
            state,
            config: ServerConfig::default(),
        })
    }

    /// Replaces the per-connection limits.
    pub fn with_config(mut self, config: ServerConfig) -> Server {
        self.config = config;
        self
    }

    /// The actually-bound address (resolves an ephemeral port).
    pub fn local_addr(&self) -> io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves requests until `max_requests` have been answered (forever
    /// when `None`). Returns the number of requests served. Per-request
    /// IO errors are counted as served-but-failed rather than aborting
    /// the loop: a malformed client must not take the endpoint down.
    pub fn run(self, max_requests: Option<u64>) -> io::Result<u64> {
        let mut served = 0u64;
        for stream in self.listener.incoming() {
            if let Ok(s) = stream {
                let _ = handle(s, &self.state, &self.config);
                served += 1;
            }
            if max_requests.is_some_and(|max| served >= max) {
                break;
            }
        }
        Ok(served)
    }
}

/// Query parameters understood by `/events`, `/stability`, and
/// `/history`.
#[derive(Debug, Default, PartialEq, Eq)]
struct QueryParams {
    /// `tail=N`: keep only the newest `N` items.
    tail: Option<usize>,
    /// `follow` (or `follow=1`/`follow=true`): stream the timeseries
    /// ring as NDJSON instead of the JSON snapshot.
    follow: bool,
    /// `at=MS`: time-travel target for `/history` — return the full
    /// run record current at that instant.
    at: Option<u64>,
    /// `collapsed` (or `collapsed=1`/`collapsed=true`): answer
    /// `/profile` with collapsed-stack lines instead of the JSON table.
    collapsed: bool,
}

/// Parses the shared query-string surface. Anything malformed — a
/// non-numeric `tail`, a `follow` with an unrecognized value, an unknown
/// parameter — is an `Err` the caller answers with an explicit `400`,
/// so a typo'd scrape fails loudly instead of silently returning the
/// un-filtered body.
fn query_params(query: Option<&str>) -> Result<QueryParams, String> {
    let mut p = QueryParams::default();
    let Some(query) = query else { return Ok(p) };
    for kv in query.split('&').filter(|kv| !kv.is_empty()) {
        let (key, value) = match kv.split_once('=') {
            Some((k, v)) => (k, Some(v)),
            None => (kv, None),
        };
        match key {
            "tail" => {
                let v = value.ok_or("tail requires a value, e.g. tail=100")?;
                p.tail = Some(
                    v.parse()
                        .map_err(|_| format!("tail={v:?} is not an unsigned integer"))?,
                );
            }
            "follow" => match value {
                None | Some("") | Some("1") | Some("true") => p.follow = true,
                Some(other) => {
                    return Err(format!("follow={other:?} (expected follow, 1, or true)"))
                }
            },
            "at" => {
                let v = value.ok_or("at requires a timestamp, e.g. at=86400000")?;
                p.at = Some(
                    v.parse()
                        .map_err(|_| format!("at={v:?} is not a millisecond timestamp"))?,
                );
            }
            "collapsed" => match value {
                None | Some("") | Some("1") | Some("true") => p.collapsed = true,
                Some(other) => {
                    return Err(format!(
                        "collapsed={other:?} (expected collapsed, 1, or true)"
                    ))
                }
            },
            other => return Err(format!("unknown query parameter {other:?}")),
        }
    }
    Ok(p)
}

/// The `400` every malformed query is answered with.
fn bad_request(msg: impl Into<String>) -> (&'static str, &'static str, String) {
    (
        "400 Bad Request",
        "text/plain; charset=utf-8",
        format!("{}\n", msg.into()),
    )
}

/// The `/history` body: run summaries (optionally tailed), or with
/// `at=MS` the full run record current at that instant. A pipeline run
/// without `--state` has no durable history, which is a `503` (the
/// endpoint exists, the storage stack just isn't attached), and a
/// backend read error is surfaced the same way rather than masked as
/// an empty history.
fn history_response(state: &ServerState, p: &QueryParams) -> (&'static str, &'static str, String) {
    let unavailable = |msg: String| {
        (
            "503 Service Unavailable",
            "application/json",
            format!("{{\"error\":{}}}\n", json_string(&msg)),
        )
    };
    let Some(history) = &state.history else {
        return unavailable("no storage stack attached; run with --state <DIR>".to_string());
    };
    if let Some(at) = p.at {
        return match history.at_or_before(at) {
            Err(e) => unavailable(format!("run history: {e}")),
            Ok(None) => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                format!("no retained window starts at or before {at} ms\n"),
            ),
            Ok(Some(run)) => match serde_json::to_string(&run) {
                Err(e) => unavailable(format!("run history: {e}")),
                Ok(body) => ("200 OK", "application/json", format!("{body}\n")),
            },
        };
    }
    match history.summaries() {
        Err(e) => unavailable(format!("run history: {e}")),
        Ok(all) => {
            let retained = all.len();
            let kept: &[RunSummary] = match p.tail {
                Some(n) => &all[retained.saturating_sub(n)..],
                None => &all[..],
            };
            let rows = serde_json::to_string(kept).unwrap_or_else(|_| "[]".to_string());
            (
                "200 OK",
                "application/json",
                format!("{{\"retained\":{retained},\"history\":{rows}}}\n"),
            )
        }
    }
}

/// Minimal JSON string escaping for error bodies.
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

fn handle(stream: TcpStream, state: &ServerState, config: &ServerConfig) -> io::Result<()> {
    stream.set_read_timeout(Some(config.read_timeout))?;
    stream.set_write_timeout(Some(config.write_timeout))?;
    // The cap rides on the reader itself, so no single header line (or
    // an endless header stream) can buffer more than max_header_bytes.
    let mut reader = BufReader::new((&stream).take(config.max_header_bytes));
    let mut line = String::new();
    reader.read_line(&mut line)?;
    if line.is_empty() {
        // Half-open client: connected, sent nothing, closed (or the
        // read deadline fired as an error before this). Nothing to
        // answer.
        return Ok(());
    }
    // Drain the request headers; routing only needs the request line.
    let mut truncated = !line.ends_with('\n');
    loop {
        let mut h = String::new();
        if reader.read_line(&mut h)? == 0 {
            // EOF before the blank line: either the client half-closed
            // mid-headers or the size cap swallowed the rest.
            truncated = reader.get_ref().limit() == 0;
            break;
        }
        if h == "\r\n" || h == "\n" {
            break;
        }
    }
    let mut parts = line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let target = parts.next().unwrap_or("/");
    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, Some(q)),
        None => (target, None),
    };

    let (status, content_type, body) = if truncated {
        (
            "431 Request Header Fields Too Large",
            "text/plain; charset=utf-8",
            format!(
                "request line + headers exceed {} bytes\n",
                config.max_header_bytes
            ),
        )
    } else if method != "GET" {
        (
            "405 Method Not Allowed",
            "text/plain; charset=utf-8",
            "only GET is supported\n".to_string(),
        )
    } else {
        match path {
            "/metrics" => (
                "200 OK",
                "text/plain; version=0.0.4; charset=utf-8",
                state.recorder.registry().prometheus_text(),
            ),
            "/events" => match query_params(query) {
                Err(msg) => bad_request(msg),
                Ok(p) if p.follow => {
                    bad_request("follow is not supported on /events; use /stability?follow")
                }
                Ok(p) if p.at.is_some() => {
                    bad_request("at is not supported on /events; use /history?at=MS")
                }
                Ok(p) if p.collapsed => {
                    bad_request("collapsed is not supported on /events; use /profile?collapsed")
                }
                Ok(p) => {
                    let events = match p.tail {
                        Some(n) => state.recorder.events().tail(n),
                        None => state.recorder.events().snapshot(),
                    };
                    let mut body = String::new();
                    for e in &events {
                        body.push_str(&e.to_json());
                        body.push('\n');
                    }
                    ("200 OK", "application/x-ndjson", body)
                }
            },
            "/stability" => match query_params(query) {
                Err(msg) => bad_request(msg),
                Ok(p) if p.at.is_some() => {
                    bad_request("at is not supported on /stability; use /history?at=MS")
                }
                Ok(p) if p.collapsed => {
                    bad_request("collapsed is not supported on /stability; use /profile?collapsed")
                }
                Ok(p) if p.follow => {
                    let frames = match p.tail {
                        Some(n) => state.timeseries.tail(n),
                        None => state.timeseries.snapshot(),
                    };
                    let mut body = String::new();
                    for f in &frames {
                        f.write_json(&mut body);
                        body.push('\n');
                    }
                    ("200 OK", "application/x-ndjson", body)
                }
                Ok(p) => {
                    let rows = &state.stability;
                    let rows = match p.tail {
                        Some(n) => &rows[rows.len().saturating_sub(n)..],
                        None => &rows[..],
                    };
                    let rows = serde_json::to_string(rows).unwrap_or_else(|_| "[]".to_string());
                    (
                        "200 OK",
                        "application/json",
                        format!("{{\"windows\":{},\"rows\":{rows}}}\n", state.windows),
                    )
                }
            },
            "/history" => match query_params(query) {
                Err(msg) => bad_request(msg),
                Ok(p) if p.follow => {
                    bad_request("follow is not supported on /history; use /stability?follow")
                }
                Ok(p) if p.collapsed => {
                    bad_request("collapsed is not supported on /history; use /profile?collapsed")
                }
                Ok(p) => history_response(state, &p),
            },
            "/profile" => match query_params(query) {
                Err(msg) => bad_request(msg),
                Ok(p) if p.follow => {
                    bad_request("follow is not supported on /profile; use /stability?follow")
                }
                Ok(p) if p.at.is_some() => {
                    bad_request("at is not supported on /profile; use /history?at=MS")
                }
                Ok(p) if p.tail.is_some() => {
                    bad_request("tail is not supported on /profile (the table is aggregated)")
                }
                Ok(p) if p.collapsed => (
                    "200 OK",
                    "text/plain; charset=utf-8",
                    state.recorder.collapsed_spans(),
                ),
                Ok(_) => (
                    "200 OK",
                    "application/json",
                    format!("{}\n", state.recorder.profile().to_json()),
                ),
            },
            "/healthz" => match &state.health {
                Some(h) => {
                    let health = serde_json::to_string(h).unwrap_or_else(|_| "{}".to_string());
                    let status_word = if h.degraded() { "degraded" } else { "ok" };
                    (
                        "200 OK",
                        "application/json",
                        format!(
                            "{{\"status\":\"{status_word}\",\"windows\":{},\"health\":{health}}}\n",
                            state.windows
                        ),
                    )
                }
                None => (
                    "503 Service Unavailable",
                    "application/json",
                    "{\"status\":\"no completed cycles\"}\n".to_string(),
                ),
            },
            _ => (
                "404 Not Found",
                "text/plain; charset=utf-8",
                "not found; try /metrics, /events, /stability, /history, /profile, /healthz\n"
                    .to_string(),
            ),
        }
    };

    drop(reader);
    let mut out = &stream;
    write!(
        out,
        "HTTP/1.1 {status}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    )?;
    out.write_all(body.as_bytes())?;
    out.flush()?;
    if truncated {
        // Closing with unread request bytes in the receive buffer turns
        // into an RST that can eat the 431 before the client reads it.
        // Drain what the client already sent — bounded, and still under
        // the read deadline — so the close is orderly.
        let mut scratch = [0u8; 4096];
        let mut budget: u64 = 1 << 20;
        let mut r = &stream;
        while budget > 0 {
            match r.read(&mut scratch) {
                Ok(0) | Err(_) => break,
                Ok(n) => budget = budget.saturating_sub(n as u64),
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Read;

    fn request(addr: SocketAddr, target: &str) -> String {
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET {target} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        resp
    }

    fn test_state() -> ServerState {
        let recorder = Arc::new(Recorder::new());
        {
            let outer = recorder.span("engine.run_window");
            drop(recorder.span("engine.classify"));
            drop(outer);
        }
        recorder.registry().counter("roleclass_test_total").inc();
        recorder
            .events()
            .record("engine", "roleclass_engine_host_grouped", vec![]);
        recorder
            .events()
            .record("aggregator", "roleclass_aggregator_window_started", vec![]);
        let timeseries = Arc::new(TimeseriesRing::default());
        timeseries.record(0, vec![("roleclass_stability_hosts", 10.0)]);
        ServerState {
            recorder,
            windows: 1,
            health: Some(WindowHealth {
                probes_total: 1,
                ..WindowHealth::default()
            }),
            stability: vec![WindowStability {
                window: 0,
                hosts: 10,
                churned_hosts: 0,
                new_groups: 3,
                retired_groups: 0,
                backbone_min: 1.0,
                backbone_mean: 1.0,
                groups: Vec::new(),
            }],
            timeseries,
            history: None,
        }
    }

    /// A run store holding three one-second windows of real pipeline
    /// output, on the in-memory backend.
    fn test_history() -> Arc<RunStore> {
        use crate::aggregator::{Aggregator, AggregatorConfig, ReplayProbe, StorageStack};
        use crate::flow::{FlowRecord, HostAddr};
        use crate::storage::StorageConfig;
        let stack = StorageStack::open(&StorageConfig::memory()).unwrap();
        let mut agg = Aggregator::new(AggregatorConfig {
            window_ms: 1000,
            origin_ms: 1000,
            min_flows: 1,
            ..AggregatorConfig::default()
        })
        .with_run_store(Arc::clone(stack.runs()));
        let mut trace = Vec::new();
        for w in 0..3u64 {
            for n in 2..5u32 {
                let mut f = FlowRecord::pair(HostAddr::v4(1), HostAddr::v4(n));
                f.start_ms = 1000 + w * 1000;
                trace.push(f);
            }
        }
        agg.attach(Box::new(ReplayProbe::new("p0", trace)));
        agg.drain();
        Arc::clone(stack.runs())
    }

    #[test]
    fn serves_metrics_events_health_and_404() {
        let server = Server::bind("127.0.0.1:0", test_state()).unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.run(Some(5)).unwrap());

        let metrics = request(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"));
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("roleclass_test_total 1"));

        let events = request(addr, "/events");
        assert!(events.contains("application/x-ndjson"));
        assert!(events.contains("\"name\":\"roleclass_engine_host_grouped\""));
        assert!(events.contains("\"name\":\"roleclass_aggregator_window_started\""));

        let tail = request(addr, "/events?tail=1");
        assert!(!tail.contains("roleclass_engine_host_grouped"));
        assert!(tail.contains("roleclass_aggregator_window_started"));

        let health = request(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 200 OK"));
        assert!(health.contains("\"status\":\"ok\""));
        assert!(health.contains("\"windows\":1"));
        assert!(health.contains("\"probes_total\":1"));

        let missing = request(addr, "/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));
        assert!(missing.contains("/stability"));

        assert_eq!(t.join().unwrap(), 5);
    }

    #[test]
    fn stability_snapshot_follow_and_explicit_400s() {
        let server = Server::bind("127.0.0.1:0", test_state()).unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.run(Some(7)).unwrap());

        let snap = request(addr, "/stability");
        assert!(snap.starts_with("HTTP/1.1 200 OK"), "{snap}");
        assert!(snap.contains("application/json"));
        assert!(snap.contains("\"windows\":1"));
        assert!(snap.contains("\"backbone_mean\":1.0"));

        // tail=0 keeps no rows but still answers with the envelope.
        let empty = request(addr, "/stability?tail=0");
        assert!(empty.contains("\"rows\":[]"));

        let follow = request(addr, "/stability?follow");
        assert!(follow.starts_with("HTTP/1.1 200 OK"), "{follow}");
        assert!(follow.contains("application/x-ndjson"));
        assert!(follow.contains("\"roleclass_stability_hosts\":10.0"));

        // The shared parser rejects malformed queries on both endpoints.
        let bad = request(addr, "/stability?tail=abc");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        let bad = request(addr, "/events?tail=");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        let bad = request(addr, "/events?follow");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        let bad = request(addr, "/stability?wat=1");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        t.join().unwrap();
    }

    #[test]
    fn history_answers_summaries_time_travel_and_503() {
        // Without a storage stack, /history is explicitly unavailable.
        let server = Server::bind("127.0.0.1:0", test_state()).unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.run(Some(1)).unwrap());
        let resp = request(addr, "/history");
        assert!(resp.starts_with("HTTP/1.1 503"), "{resp}");
        assert!(resp.contains("--state"), "{resp}");
        t.join().unwrap();

        let state = ServerState {
            history: Some(test_history()),
            ..test_state()
        };
        let server = Server::bind("127.0.0.1:0", state).unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.run(Some(7)).unwrap());

        let list = request(addr, "/history");
        assert!(list.starts_with("HTTP/1.1 200 OK"), "{list}");
        assert!(list.contains("\"retained\":3"), "{list}");
        assert!(list.contains("\"window_start_ms\":3000"), "{list}");

        // tail trims the list but reports the full retained count.
        let tail = request(addr, "/history?tail=1");
        assert!(!tail.contains("\"window_start_ms\":1000"), "{tail}");
        assert!(tail.contains("\"retained\":3"), "{tail}");
        assert!(tail.contains("\"window_start_ms\":3000"), "{tail}");

        // at=MS time-travels to the run current at that instant.
        let at = request(addr, "/history?at=1500");
        assert!(at.starts_with("HTTP/1.1 200 OK"), "{at}");
        assert!(at.contains("\"start_ms\":1000"), "{at}");
        assert!(at.contains("\"grouping\""), "{at}");

        // Before the first retained window: an explicit 404.
        let missing = request(addr, "/history?at=500");
        assert!(missing.starts_with("HTTP/1.1 404"), "{missing}");
        let bad = request(addr, "/history?follow");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        let bad = request(addr, "/events?at=5");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        let bad = request(addr, "/stability?at=5");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        t.join().unwrap();
    }

    #[test]
    fn profile_answers_table_collapsed_and_explicit_400s() {
        let server = Server::bind("127.0.0.1:0", test_state()).unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.run(Some(6)).unwrap());

        let table = request(addr, "/profile");
        assert!(table.starts_with("HTTP/1.1 200 OK"), "{table}");
        assert!(table.contains("application/json"));
        assert!(table.contains("\"name\":\"engine.run_window\""), "{table}");
        assert!(table.contains("\"self_secs\""), "{table}");
        assert!(table.contains("\"alloc_bytes\""), "{table}");

        let collapsed = request(addr, "/profile?collapsed");
        assert!(collapsed.starts_with("HTTP/1.1 200 OK"), "{collapsed}");
        assert!(collapsed.contains("text/plain"));
        let body = collapsed.split("\r\n\r\n").nth(1).unwrap();
        for line in body.lines() {
            let (frames, _) = telemetry::parse_collapsed_line(line).expect(line);
            assert_eq!(frames[0], "roleclass");
        }
        assert!(body.contains("roleclass;engine.run_window"), "{body}");

        // The shared strict parser rejects what /profile cannot answer.
        let bad = request(addr, "/profile?follow");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        let bad = request(addr, "/profile?tail=3");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        let bad = request(addr, "/profile?at=5");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        let bad = request(addr, "/events?collapsed");
        assert!(bad.starts_with("HTTP/1.1 400"), "{bad}");
        t.join().unwrap();
    }

    #[test]
    fn query_params_parse_and_reject() {
        assert_eq!(query_params(None).unwrap(), QueryParams::default());
        assert_eq!(query_params(Some("")).unwrap(), QueryParams::default());
        assert_eq!(
            query_params(Some("tail=5&follow")).unwrap(),
            QueryParams {
                tail: Some(5),
                follow: true,
                at: None,
                collapsed: false,
            }
        );
        assert!(query_params(Some("follow=true")).unwrap().follow);
        assert!(query_params(Some("follow=1")).unwrap().follow);
        assert!(query_params(Some("collapsed")).unwrap().collapsed);
        assert!(query_params(Some("collapsed=true")).unwrap().collapsed);
        assert!(query_params(Some("collapsed=no")).is_err());
        assert_eq!(query_params(Some("at=1500")).unwrap().at, Some(1500));
        assert!(query_params(Some("tail=-1")).is_err());
        assert!(query_params(Some("tail")).is_err());
        assert!(query_params(Some("follow=no")).is_err());
        assert!(query_params(Some("at")).is_err());
        assert!(query_params(Some("at=noon")).is_err());
        assert!(query_params(Some("depth=2")).is_err());
    }

    #[test]
    fn half_open_connection_cannot_park_the_listener() {
        let server = Server::bind("127.0.0.1:0", test_state())
            .unwrap()
            .with_config(ServerConfig {
                read_timeout: Duration::from_millis(100),
                ..ServerConfig::default()
            });
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.run(Some(3)).unwrap());

        // Two hostile clients: one connects and goes silent, one sends
        // half a request line and stalls. Each costs the server at most
        // the read deadline.
        let silent = TcpStream::connect(addr).unwrap();
        let mut stalled = TcpStream::connect(addr).unwrap();
        write!(stalled, "GET /met").unwrap();

        // A well-behaved request still gets served afterwards.
        let metrics = request(addr, "/metrics");
        assert!(metrics.starts_with("HTTP/1.1 200 OK"), "{metrics}");
        drop(silent);
        drop(stalled);
        assert_eq!(t.join().unwrap(), 3);
    }

    #[test]
    fn oversized_headers_are_431_not_buffered() {
        let server = Server::bind("127.0.0.1:0", test_state())
            .unwrap()
            .with_config(ServerConfig {
                max_header_bytes: 256,
                ..ServerConfig::default()
            });
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.run(Some(2)).unwrap());

        // One huge header line blowing straight past the cap. Half-close
        // after writing so the server's drain sees EOF promptly.
        let mut s = TcpStream::connect(addr).unwrap();
        write!(
            s,
            "GET /metrics HTTP/1.1\r\nX-Big: {}\r\n\r\n",
            "a".repeat(4096)
        )
        .unwrap();
        s.shutdown(std::net::Shutdown::Write).unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 431"), "{resp}");

        // An endless stream of small headers is cut off the same way.
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "GET /metrics HTTP/1.1\r\n").unwrap();
        for i in 0..200 {
            if write!(s, "X-H{i}: v\r\n").is_err() {
                break; // server already hung up on us
            }
        }
        let _ = write!(s, "\r\n");
        let _ = s.shutdown(std::net::Shutdown::Write);
        let mut resp = String::new();
        let _ = s.read_to_string(&mut resp);
        assert!(resp.starts_with("HTTP/1.1 431"), "{resp}");
        t.join().unwrap();
    }

    #[test]
    fn healthz_is_503_before_first_cycle() {
        let state = ServerState {
            recorder: Arc::new(Recorder::new()),
            windows: 0,
            health: None,
            stability: Vec::new(),
            timeseries: Arc::new(TimeseriesRing::default()),
            history: None,
        };
        let server = Server::bind("127.0.0.1:0", state).unwrap();
        let addr = server.local_addr().unwrap();
        let t = std::thread::spawn(move || server.run(Some(2)).unwrap());
        let health = request(addr, "/healthz");
        assert!(health.starts_with("HTTP/1.1 503"));
        let mut s = TcpStream::connect(addr).unwrap();
        write!(s, "POST /metrics HTTP/1.1\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        assert!(resp.starts_with("HTTP/1.1 405"));
        t.join().unwrap();
    }
}
