//! Text rendering for `rcctl stability`: per-group persistence/backbone
//! tables and per-host churn tables over a replayed trace.
//!
//! The data comes straight from the aggregator's
//! [`StabilityTracker`](crate::roleclass::StabilityTracker) replay — the
//! same rows `/stability` serves as JSON — so what the operator reads in
//! the terminal and what a dashboard scrapes are one computation.

use crate::flow::HostAddr;
use crate::roleclass::{GroupId, HostChurn, WindowStability};
use std::fmt::Write as _;

/// Renders the window-by-window stability summary.
pub fn render_windows(out: &mut String, rows: &[WindowStability]) {
    let _ = writeln!(
        out,
        "{:>6} {:>6} {:>7} {:>4} {:>7} {:>13} {:>14}",
        "window", "hosts", "churned", "new", "retired", "backbone_min", "backbone_mean"
    );
    for w in rows {
        let _ = writeln!(
            out,
            "{:>6} {:>6} {:>7} {:>4} {:>7} {:>13.3} {:>14.3}",
            w.window,
            w.hosts,
            w.churned_hosts,
            w.new_groups,
            w.retired_groups,
            w.backbone_min,
            w.backbone_mean
        );
    }
}

/// Renders the per-group persistence/backbone table for the last window,
/// optionally restricted to one group id.
pub fn render_groups(out: &mut String, rows: &[WindowStability], only: Option<GroupId>) {
    let Some(last) = rows.last() else {
        out.push_str("no completed windows\n");
        return;
    };
    let _ = writeln!(
        out,
        "\ngroups in window {} (persistence = consecutive windows the id survived):",
        last.window
    );
    let _ = writeln!(
        out,
        "{:>6} {:>11} {:>7} {:>8} {:>12} {:>8}",
        "group", "persistence", "members", "retained", "prev_members", "backbone"
    );
    let mut shown = 0usize;
    for g in &last.groups {
        if only.is_some_and(|id| id != g.group) {
            continue;
        }
        shown += 1;
        let _ = writeln!(
            out,
            "{:>6} {:>11} {:>7} {:>8} {:>12} {:>8.3}",
            g.group.to_string(),
            g.persistence,
            g.members,
            g.retained,
            g.prev_members,
            g.backbone
        );
    }
    if shown == 0 {
        if let Some(id) = only {
            let _ = writeln!(out, "group {id} not present in the last window");
        }
    }
}

/// Renders one group's persistence/backbone trajectory across every
/// observed window — what `--group` adds on top of the last-window row.
pub fn render_group_trajectory(out: &mut String, rows: &[WindowStability], id: GroupId) {
    let _ = writeln!(out, "\ngroup {id} across windows:");
    let _ = writeln!(
        out,
        "{:>6} {:>11} {:>7} {:>8} {:>8}",
        "window", "persistence", "members", "retained", "backbone"
    );
    let mut seen = false;
    for w in rows {
        for g in &w.groups {
            if g.group == id {
                seen = true;
                let _ = writeln!(
                    out,
                    "{:>6} {:>11} {:>7} {:>8} {:>8.3}",
                    w.window, g.persistence, g.members, g.retained, g.backbone
                );
            }
        }
    }
    if !seen {
        let _ = writeln!(out, "group {id} never published");
    }
}

/// Renders the per-host churn table (flips over the sliding horizon),
/// optionally restricted to one host.
pub fn render_churn(out: &mut String, table: &[HostChurn], only: Option<HostAddr>) {
    let _ = writeln!(
        out,
        "\nhost churn (group-id flips over the sliding horizon), most churned first:"
    );
    let _ = writeln!(
        out,
        "{:>18} {:>6} {:>8} {:>6}",
        "host", "flips", "windows", "group"
    );
    let mut shown = 0usize;
    for c in table {
        if only.is_some_and(|h| h != c.host) {
            continue;
        }
        shown += 1;
        let _ = writeln!(
            out,
            "{:>18} {:>6} {:>8} {:>6}",
            c.host.to_string(),
            c.flips,
            c.windows,
            c.group.to_string()
        );
    }
    if shown == 0 {
        if let Some(h) = only {
            let _ = writeln!(out, "host {h} never observed");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::roleclass::GroupStability;

    fn row(window: u64) -> WindowStability {
        WindowStability {
            window,
            hosts: 4,
            churned_hosts: 1,
            new_groups: 0,
            retired_groups: 0,
            backbone_min: 0.5,
            backbone_mean: 0.75,
            groups: vec![
                GroupStability {
                    group: GroupId(1),
                    persistence: window + 1,
                    members: 2,
                    retained: 1,
                    prev_members: 2,
                    backbone: 0.5,
                },
                GroupStability {
                    group: GroupId(2),
                    persistence: window + 1,
                    members: 2,
                    retained: 2,
                    prev_members: 2,
                    backbone: 1.0,
                },
            ],
        }
    }

    #[test]
    fn renders_window_group_and_churn_tables() {
        let rows = vec![row(0), row(1)];
        let mut out = String::new();
        render_windows(&mut out, &rows);
        render_groups(&mut out, &rows, None);
        render_group_trajectory(&mut out, &rows, GroupId(1));
        let churn = vec![HostChurn {
            host: HostAddr::v4(10),
            flips: 2,
            windows: 2,
            group: GroupId(1),
        }];
        render_churn(&mut out, &churn, None);
        assert!(out.contains("backbone_mean"));
        assert!(out.contains("persistence"));
        assert!(out.contains("0.750"));
        assert!(out.contains("group 1 across windows"));
        assert!(out.contains("0.0.0.10"));
    }

    #[test]
    fn filters_report_absences() {
        let rows = vec![row(0)];
        let mut out = String::new();
        render_groups(&mut out, &rows, Some(GroupId(9)));
        assert!(out.contains("group 9 not present"));
        let mut out = String::new();
        render_group_trajectory(&mut out, &rows, GroupId(9));
        assert!(out.contains("group 9 never published"));
        let mut out = String::new();
        render_churn(&mut out, &[], Some(HostAddr::v4(99)));
        assert!(out.contains("never observed"));
        let mut out = String::new();
        render_groups(&mut out, &[], None);
        assert!(out.contains("no completed windows"));
    }
}
