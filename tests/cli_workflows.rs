//! Integration tests for the `rcctl` CLI: classify → snapshot →
//! correlate → diff, over real files in all four input formats.

use role_classification::cli::{run, Snapshot};
use role_classification::flow::{netflow, pcap, rmon, textlog};
use role_classification::synthnet::{scenarios, trace};
use serde::value::Value;
use std::path::{Path, PathBuf};

fn args(list: &[&str]) -> Vec<String> {
    list.iter().map(|s| s.to_string()).collect()
}

fn workdir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rcctl-test-{name}"));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create temp dir");
    dir
}

/// Fabricates Figure-1 flow files in every supported format.
fn write_inputs(dir: &Path) -> Vec<(String, &'static str)> {
    let net = scenarios::figure1(3, 3);
    let records = trace::expand(&net.connsets, trace::TraceOptions::default(), 5);
    let mut out = Vec::new();

    let text_path = dir.join("flows.txt");
    std::fs::write(&text_path, textlog::render(&records)).unwrap();
    out.push((text_path.to_string_lossy().into_owned(), "text"));

    let nf_path = dir.join("flows.nf");
    std::fs::write(&nf_path, netflow::write_stream(&records, 0)).unwrap();
    out.push((nf_path.to_string_lossy().into_owned(), "netflow"));

    let pcap_path = dir.join("flows.pcap");
    std::fs::write(&pcap_path, pcap::write_file(&records)).unwrap();
    out.push((pcap_path.to_string_lossy().into_owned(), "pcap"));

    let rmon_path = dir.join("flows.rmon");
    std::fs::write(&rmon_path, rmon::render(&records)).unwrap();
    out.push((rmon_path.to_string_lossy().into_owned(), "rmon"));

    out
}

#[test]
fn info_reports_population() {
    let dir = workdir("info");
    let inputs = write_inputs(&dir);
    let (path, _) = &inputs[0];
    let out = run(&args(&["info", "--input", path])).unwrap();
    assert!(out.contains("hosts:       10"));
    assert!(out.contains("connections: 18"));
}

#[test]
fn classify_agrees_across_all_formats() {
    let dir = workdir("formats");
    let mut group_counts = Vec::new();
    for (path, _format) in write_inputs(&dir) {
        // Extension-based detection: no --format flag passed.
        let out = run(&args(&[
            "classify", "--input", &path, "--s-lo", "90", "--s-hi", "95",
        ]))
        .unwrap();
        let line = out.lines().next().unwrap().to_string();
        group_counts.push(line);
    }
    // All four parsers see the same structure.
    assert!(group_counts.iter().all(|l| l == &group_counts[0]));
    assert!(group_counts[0].contains("10 hosts in 5 groups"));
}

#[test]
fn classify_correlate_diff_workflow() {
    let dir = workdir("workflow");
    let inputs = write_inputs(&dir);
    let (flows, _) = &inputs[0];
    let snap1 = dir.join("day1.json").to_string_lossy().into_owned();
    let snap2 = dir.join("day2.json").to_string_lossy().into_owned();
    let dot = dir.join("groups.dot").to_string_lossy().into_owned();

    // Day 1: classify and snapshot.
    let out = run(&args(&[
        "classify",
        "--input",
        flows,
        "--snapshot",
        &snap1,
        "--dot",
        &dot,
        "--s-lo",
        "90",
        "--s-hi",
        "95",
    ]))
    .unwrap();
    assert!(out.contains("wrote"));
    let dot_text = std::fs::read_to_string(&dot).unwrap();
    assert!(dot_text.starts_with("graph"));
    let snapshot: Snapshot =
        serde_json::from_str(&std::fs::read_to_string(&snap1).unwrap()).unwrap();
    assert_eq!(snapshot.grouping.host_count(), 10);

    // Day 2: identical traffic correlates 1:1 with day 1.
    let out = run(&args(&[
        "correlate",
        "--prev",
        &snap1,
        "--input",
        flows,
        "--snapshot",
        &snap2,
        "--s-lo",
        "90",
        "--s-hi",
        "95",
    ]))
    .unwrap();
    assert!(out.contains("correlated 5 of 5 groups"));
    assert!(out.contains("(no changes)"));

    // Diff of the two snapshots is empty.
    let out = run(&args(&["diff", "--prev", &snap1, "--curr", &snap2])).unwrap();
    assert!(out.contains("no changes"));
}

#[test]
fn auto_k_hi_flag_works() {
    let dir = workdir("autok");
    let inputs = write_inputs(&dir);
    let (flows, _) = &inputs[0];
    let out = run(&args(&["classify", "--input", flows, "--auto-k-hi"])).unwrap();
    assert!(out.contains("groups"));
}

#[test]
fn trace_flag_appends_span_tree() {
    let dir = workdir("trace");
    let inputs = write_inputs(&dir);
    let (flows, _) = &inputs[0];
    let snap = dir.join("day1.json").to_string_lossy().into_owned();
    let out = run(&args(&[
        "classify",
        "--input",
        flows,
        "--snapshot",
        &snap,
        "--trace",
    ]))
    .unwrap();
    assert!(out.contains("trace:"));
    assert!(out.contains("engine.form"));
    assert!(out.contains("kernel.build"));
    assert!(out.contains("ms"));

    let out = run(&args(&[
        "correlate",
        "--prev",
        &snap,
        "--input",
        flows,
        "--trace",
    ]))
    .unwrap();
    assert!(out.contains("engine.run_window"));
    assert!(out.contains("engine.correlate"));
}

#[test]
fn classify_output_is_identical_with_and_without_trace() {
    let dir = workdir("traceparity");
    let inputs = write_inputs(&dir);
    let (flows, _) = &inputs[0];
    let plain = run(&args(&["classify", "--input", flows])).unwrap();
    let traced = run(&args(&["classify", "--input", flows, "--trace"])).unwrap();
    // The grouping itself is bit-identical; --trace only appends.
    assert!(traced.starts_with(&plain));
    assert_ne!(plain, traced);
}

#[test]
fn metrics_prints_registry_and_probe_reports() {
    let dir = workdir("metrics");
    let inputs = write_inputs(&dir);
    let (flows, _) = &inputs[0];
    let out = run(&args(&["metrics", "--input", flows])).unwrap();
    assert!(out.contains("windows: 1"));
    assert!(out.contains("Open"));
    assert!(out.contains("roleclass_aggregator_cycles_total 1"));
    assert!(out.contains("roleclass_engine_windows_total 1"));
    assert!(out.contains("roleclass_kernel_builds_total"));
    // Prometheus framing.
    assert!(out.contains("# TYPE roleclass_aggregator_cycles_total counter"));

    // Splitting into windows yields more cycles, and --trace adds spans.
    let out = run(&args(&[
        "metrics",
        "--input",
        flows,
        "--window-ms",
        "1000",
        "--trace",
    ]))
    .unwrap();
    assert!(!out.contains("windows: 1\n"));
    assert!(out.contains("aggregator.run_cycle"));
    assert!(out.contains("aggregator.poll"));
}

#[test]
fn metrics_json_composes_registry_and_probes() {
    let dir = workdir("metricsjson");
    let inputs = write_inputs(&dir);
    let (flows, _) = &inputs[0];
    let out = run(&args(&["metrics", "--input", flows, "--json"])).unwrap();
    let parsed: Value = serde_json::from_str(&out).unwrap();
    let Value::Map(entries) = parsed else {
        panic!("top level must be an object");
    };
    let get = |k: &str| &entries.iter().find(|(n, _)| n == k).unwrap().1;
    assert!(matches!(get("windows"), Value::U64(1)));
    // The registry snapshot groups metrics by kind.
    let Value::Map(metrics) = get("metrics") else {
        panic!("metrics must be an object");
    };
    assert!(metrics.iter().any(|(k, _)| k == "counters"));
    assert!(metrics.iter().any(|(k, _)| k == "histograms"));
    let Value::Seq(probes) = get("probes") else {
        panic!("probes must be an array");
    };
    assert_eq!(probes.len(), 1);
    let Value::Map(probe) = &probes[0] else {
        panic!("probe report must be an object");
    };
    assert!(probe
        .iter()
        .any(|(k, v)| k == "health" && matches!(v, Value::Str(s) if s == "Open")));
}

#[test]
fn explain_prints_decision_chain_across_windows() {
    let dir = workdir("explain");
    let inputs = write_inputs(&dir);
    let (flows, _) = &inputs[0];
    // Same deterministic scenario as write_inputs: look up a real host.
    let net = scenarios::figure1(3, 3);
    let host = net.role_hosts("sales")[0].to_string();
    let out = run(&args(&[
        "explain",
        "--input",
        flows,
        "--host",
        &host,
        "--window-ms",
        "43200000",
        "--s-lo",
        "90",
        "--s-hi",
        "95",
    ]))
    .unwrap();
    assert!(out.contains(&format!("decision chain for host {host}")));
    assert!(out.contains("window 0:"));
    assert!(out.contains("window 1:"));
    assert!(out.contains("formation: grouped at k="));
    assert!(out.contains("merge vs group of"));
    assert!(out.contains("assigned fresh"));
    assert!(out.contains("result: group"));

    let err = run(&args(&["explain", "--input", flows])).unwrap_err();
    assert_eq!(err.code, 2);
    assert!(err.message.contains("--host"));
    let err = run(&args(&[
        "explain",
        "--input",
        flows,
        "--host",
        "not-an-addr",
    ]))
    .unwrap_err();
    assert_eq!(err.code, 2);
}

#[test]
fn serve_answers_metrics_events_and_health() {
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;

    let dir = workdir("serve");
    let inputs = write_inputs(&dir);
    let flows = inputs[0].0.clone();
    let addr_file = dir.join("addr.txt");
    let addr_file_arg = addr_file.to_string_lossy().into_owned();
    let t = std::thread::spawn(move || {
        run(&args(&[
            "serve",
            "--input",
            &flows,
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            &addr_file_arg,
            "--max-requests",
            "5",
        ]))
        .unwrap()
    });
    // The server writes its ephemeral address before accepting.
    let mut addr = String::new();
    for _ in 0..500 {
        if let Ok(s) = std::fs::read_to_string(&addr_file) {
            if !s.is_empty() {
                addr = s;
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(!addr.is_empty(), "server never wrote its address");

    let get = |path: &str| {
        let mut s = TcpStream::connect(addr.trim()).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        resp
    };
    let metrics = get("/metrics");
    assert!(metrics.starts_with("HTTP/1.1 200 OK"));
    assert!(metrics.contains("roleclass_aggregator_cycles_total 1"));
    let events = get("/events");
    assert!(events.contains("application/x-ndjson"));
    assert!(events.contains("\"name\":\"roleclass_aggregator_window_started\""));
    assert!(events.contains("\"name\":\"roleclass_engine_host_grouped\""));
    let health = get("/healthz");
    assert!(health.starts_with("HTTP/1.1 200 OK"));
    assert!(health.contains("\"status\":\"ok\""));
    assert!(health.contains("\"windows\":1"));
    let stability = get("/stability");
    assert!(stability.starts_with("HTTP/1.1 200 OK"));
    assert!(stability.contains("\"windows\":1"));
    assert!(stability.contains("\"backbone_mean\""));
    let follow = get("/stability?follow");
    assert!(follow.contains("application/x-ndjson"));
    assert!(follow.contains("roleclass_stability_hosts"));

    let summary = t.join().unwrap();
    assert!(summary.contains("served 5 request(s)"));
}

#[test]
fn stability_reports_persistence_and_churn() {
    let dir = workdir("stability");
    let inputs = write_inputs(&dir);
    let (flows, _) = &inputs[0];
    let common = ["--window-ms", "1000", "--s-lo", "90", "--s-hi", "95"];

    let mut full = vec!["stability", "--input", flows.as_str()];
    full.extend_from_slice(&common);
    let out = run(&args(&full)).unwrap();
    // A structurally stable replay: per-window summary, per-group
    // persistence table, and an all-zero churn table.
    assert!(out.contains("backbone_mean"), "{out}");
    assert!(out.contains("persistence"), "{out}");
    assert!(out.contains("host churn"), "{out}");

    // --host narrows the churn table to one host.
    let net = scenarios::figure1(3, 3);
    let host = net.role_hosts("sales")[0].to_string();
    let mut by_host = vec!["stability", "--input", flows.as_str(), "--host", &host];
    by_host.extend_from_slice(&common);
    let out = run(&args(&by_host)).unwrap();
    assert!(out.contains(&host), "{out}");

    // --group narrows the group table and adds the id's trajectory.
    let mut by_group = vec!["stability", "--input", flows.as_str(), "--group", "0"];
    by_group.extend_from_slice(&common);
    let out = run(&args(&by_group)).unwrap();
    assert!(out.contains("group 0 across windows"), "{out}");

    // A malformed --group is a usage error, and --json parses.
    let err = run(&args(&["stability", "--input", flows, "--group", "pod"])).unwrap_err();
    assert_eq!(err.code, 2);
    let mut json_args = vec!["stability", "--input", flows.as_str(), "--json"];
    json_args.extend_from_slice(&common);
    let out = run(&args(&json_args)).unwrap();
    let parsed: Value = serde_json::from_str(out.trim()).unwrap();
    let Value::Map(entries) = parsed else {
        panic!("expected a JSON object");
    };
    let get = |k: &str| &entries.iter().find(|(key, _)| key == k).unwrap().1;
    let Value::Seq(rows) = get("rows") else {
        panic!("rows must be an array");
    };
    assert!(matches!(get("windows"), Value::U64(n) if *n as usize == rows.len()));
    let Value::Seq(churn) = get("churn") else {
        panic!("churn must be an array");
    };
    assert_eq!(churn.len(), 10);
}

#[test]
fn missing_file_is_runtime_error() {
    let err = run(&args(&["classify", "--input", "/nonexistent/flows.txt"])).unwrap_err();
    assert_eq!(err.code, 1);
    assert!(err.message.contains("/nonexistent/flows.txt"));
}

#[test]
fn malformed_snapshot_is_runtime_error() {
    let dir = workdir("badsnap");
    let bad = dir.join("bad.json");
    std::fs::write(&bad, "{not json").unwrap();
    let inputs = write_inputs(&dir);
    let (flows, _) = &inputs[0];
    let err = run(&args(&[
        "correlate",
        "--prev",
        &bad.to_string_lossy(),
        "--input",
        flows,
    ]))
    .unwrap_err();
    assert_eq!(err.code, 1);
}

#[test]
fn probe_send_streams_into_ingest_listen() {
    let dir = workdir("wire");
    let inputs = write_inputs(&dir);
    let (flows, _) = &inputs[0];
    let addr_file = dir.join("listener.addr");

    // The listener blocks until the probe session ends, so it runs in a
    // thread; --addr-file hands the ephemeral port back to the sender.
    let af = addr_file.to_string_lossy().into_owned();
    let listener = std::thread::spawn(move || {
        run(&args(&[
            "ingest",
            "listen",
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            &af,
            "--probe",
            "edge",
            "--max-windows",
            "3",
        ]))
    });
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    while !addr_file.exists() && std::time::Instant::now() < deadline {
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    let addr = std::fs::read_to_string(&addr_file).expect("listener never wrote its address");

    let sent = run(&args(&[
        "probe", "send", "--input", flows, "--to", &addr, "--probe", "edge",
    ]))
    .unwrap();
    assert!(sent.contains("window(s) as probe \"edge\""), "{sent}");
    assert!(sent.contains("0 retransmit(s)"), "{sent}");

    let out = listener.join().unwrap().unwrap();
    // Figure-1 population, classified from the wire exactly as
    // `classify` would from the file: all 10 hosts, healthy window.
    assert!(out.contains("10 host(s)"), "{out}");
    assert!(out.contains("healthy"), "{out}");
    assert!(!out.contains("degraded"), "{out}");
    assert!(out.contains("probe edge"), "{out}");
}

#[test]
fn worker_and_prune_flags_do_not_change_results() {
    let dir = workdir("tuning");
    let inputs = write_inputs(&dir);
    let (path, _) = &inputs[0];
    let baseline = run(&args(&[
        "classify", "--input", path, "--s-lo", "90", "--s-hi", "95",
    ]))
    .unwrap();
    // The engine guarantees bit-identical output for any worker count
    // and with pruning disabled; the CLI must only route the knobs.
    for extra in [
        &["--workers", "1"][..],
        &["--workers", "2"][..],
        &["--workers", "8"][..],
        &["--no-prune"][..],
        &["--workers", "2", "--no-prune"][..],
    ] {
        let mut argv = args(&["classify", "--input", path, "--s-lo", "90", "--s-hi", "95"]);
        argv.extend(extra.iter().map(|s| s.to_string()));
        assert_eq!(run(&argv).unwrap(), baseline, "flags: {extra:?}");
    }
}

#[test]
fn workers_flag_rejects_non_integers() {
    let dir = workdir("badworkers");
    let inputs = write_inputs(&dir);
    let (path, _) = &inputs[0];
    let err = run(&args(&["classify", "--input", path, "--workers", "many"])).unwrap_err();
    assert_eq!(err.code, 2);
    assert!(err.message.contains("--workers"), "{}", err.message);
}

#[test]
fn tuning_flags_parse_on_every_subcommand() {
    let dir = workdir("tuning-all");
    let inputs = write_inputs(&dir);
    let (path, _) = &inputs[0];
    let snap = dir.join("snap.json").to_string_lossy().into_owned();
    run(&args(&[
        "classify",
        "--input",
        path,
        "--snapshot",
        &snap,
        "--workers",
        "2",
        "--no-prune",
    ]))
    .unwrap();
    run(&args(&[
        "correlate",
        "--prev",
        &snap,
        "--input",
        path,
        "--workers",
        "2",
        "--no-prune",
    ]))
    .unwrap();
    run(&args(&[
        "metrics",
        "--input",
        path,
        "--workers",
        "2",
        "--no-prune",
    ]))
    .unwrap();
}

#[test]
fn usage_documents_engine_tuning() {
    let usage = run(&args(&["help"])).unwrap();
    assert!(usage.contains("--workers"), "{usage}");
    assert!(usage.contains("--no-prune"), "{usage}");
}

#[test]
fn usage_documents_storage_and_time_travel() {
    let usage = run(&args(&["help"])).unwrap();
    assert!(usage.contains("--state"), "{usage}");
    assert!(usage.contains("--store"), "{usage}");
    assert!(usage.contains("--at"), "{usage}");
    assert!(usage.contains("/history"), "{usage}");
}

#[test]
fn explain_time_travels_from_segment_store() {
    let dir = workdir("timetravel");
    let inputs = write_inputs(&dir);
    let (flows, _) = &inputs[0];
    let store = dir.join("store").to_string_lossy().into_owned();
    let net = scenarios::figure1(3, 3);
    let host = net.role_hosts("sales")[0].to_string();

    // Populate the store: a windowed metrics replay persists every
    // classified window into the segment backend.
    let out = run(&args(&[
        "metrics",
        "--input",
        flows,
        "--window-ms",
        "43200000",
        "--state",
        &store,
        "--store",
        "segment",
        "--s-lo",
        "90",
        "--s-hi",
        "95",
    ]))
    .unwrap();
    assert!(!out.contains("windows: 0"), "{out}");

    // Time travel: no capture file at all — the windows come back out
    // of the store, labeled with their real bounds.
    let replayed = run(&args(&[
        "explain",
        "--host",
        &host,
        "--state",
        &store,
        "--store",
        "segment",
        "--at",
        "999999999999",
        "--s-lo",
        "90",
        "--s-hi",
        "95",
    ]))
    .unwrap();
    assert!(
        replayed.contains("retained window(s) from the segment store"),
        "{replayed}"
    );
    assert!(
        replayed.contains(&format!("decision chain for host {host}")),
        "{replayed}"
    );
    assert!(replayed.contains("window ["), "{replayed}");
    assert!(replayed.contains("formation: grouped at k="), "{replayed}");
    assert!(replayed.contains("result: group"), "{replayed}");

    // Without --at the full retained history replays identically.
    let full = run(&args(&[
        "explain", "--host", &host, "--state", &store, "--s-lo", "90", "--s-hi", "95",
    ]))
    .unwrap();
    assert_eq!(full, replayed);

    // A cutoff before the first retained window is a runtime error.
    let err = run(&args(&[
        "explain", "--host", &host, "--state", &store, "--at", "0",
    ]))
    .unwrap_err();
    assert_eq!(err.code, 1);
    assert!(
        err.message.contains("no retained window"),
        "{}",
        err.message
    );
}

#[test]
fn storage_flag_misuse_is_a_usage_error() {
    let dir = workdir("storeflags");
    let inputs = write_inputs(&dir);
    let (flows, _) = &inputs[0];

    // --store without --state persists nothing: rejected.
    let err = run(&args(&["metrics", "--input", flows, "--store", "segment"])).unwrap_err();
    assert_eq!(err.code, 2);
    assert!(err.message.contains("--state"), "{}", err.message);

    // --at outside a store-backed explain: rejected.
    let err = run(&args(&[
        "explain", "--input", flows, "--host", "0.0.0.1", "--at", "5",
    ]))
    .unwrap_err();
    assert_eq!(err.code, 2);
    assert!(err.message.contains("--state"), "{}", err.message);

    // An unknown backend name: rejected with the valid choices.
    let store = dir.join("store").to_string_lossy().into_owned();
    let err = run(&args(&[
        "metrics", "--input", flows, "--state", &store, "--store", "floppy",
    ]))
    .unwrap_err();
    assert_eq!(err.code, 2);
    assert!(
        err.message.contains("memory|appendlog|segment"),
        "{}",
        err.message
    );
}

#[test]
fn serve_exposes_history_from_the_store() {
    use std::io::{Read as _, Write as _};
    use std::net::TcpStream;

    let dir = workdir("servehistory");
    let inputs = write_inputs(&dir);
    let flows = inputs[0].0.clone();
    let store = dir.join("store").to_string_lossy().into_owned();
    let addr_file = dir.join("addr.txt");
    let addr_file_arg = addr_file.to_string_lossy().into_owned();
    let t = std::thread::spawn(move || {
        run(&args(&[
            "serve",
            "--input",
            &flows,
            "--window-ms",
            "43200000",
            "--state",
            &store,
            "--addr",
            "127.0.0.1:0",
            "--addr-file",
            &addr_file_arg,
            "--max-requests",
            "2",
        ]))
        .unwrap()
    });
    let mut addr = String::new();
    for _ in 0..500 {
        if let Ok(s) = std::fs::read_to_string(&addr_file) {
            if !s.is_empty() {
                addr = s;
                break;
            }
        }
        std::thread::sleep(std::time::Duration::from_millis(10));
    }
    assert!(!addr.is_empty(), "server never wrote its address");

    let get = |path: &str| {
        let mut s = TcpStream::connect(addr.trim()).unwrap();
        write!(s, "GET {path} HTTP/1.1\r\nHost: test\r\n\r\n").unwrap();
        let mut resp = String::new();
        s.read_to_string(&mut resp).unwrap();
        resp
    };
    let history = get("/history");
    assert!(history.starts_with("HTTP/1.1 200 OK"), "{history}");
    assert!(history.contains("\"retained\":"), "{history}");
    assert!(history.contains("\"window_start_ms\":"), "{history}");
    let at = get("/history?at=999999999999");
    assert!(at.starts_with("HTTP/1.1 200 OK"), "{at}");
    assert!(at.contains("\"grouping\""), "{at}");
    t.join().unwrap();
}
