//! Integration tests for the Figure 5 correlation scenario and the
//! Section 5.1 hard cases, on the full Mazu network.

use role_classification::flow::{ConnectionSets, HostAddr};
use role_classification::roleclass::{
    apply_correlation, diff_groupings, try_classify, try_correlate, Classification, Correlation,
    Grouping, Params,
};
use role_classification::synthnet::{churn, scenarios};

fn params() -> Params {
    Params::default()
}

// Local shims over the fallible entry points (the panicking wrappers
// are deprecated).
fn classify(cs: &ConnectionSets, p: &Params) -> Classification {
    try_classify(cs, p).unwrap()
}

fn correlate(
    prev_cs: &ConnectionSets,
    prev_g: &Grouping,
    curr_cs: &ConnectionSets,
    curr_g: &Grouping,
    p: &Params,
) -> Correlation {
    try_correlate(prev_cs, prev_g, curr_cs, curr_g, p).unwrap()
}

#[test]
fn figure5_full_scenario() {
    let original = scenarios::mazu(42);
    let before = classify(&original.connsets, &params());

    let mut changed = original.clone();
    let unix_mail = original.host("unix_mail");
    let ms_exchange = original.host("ms_exchange");
    churn::swap_hosts(&mut changed, unix_mail, ms_exchange);
    let old_nt = original.host("nt_server");
    let new_nt = HostAddr::from_octets(10, 0, 1, 18);
    churn::replace_host(&mut changed, old_nt, new_nt);
    let old_admin = original.role_hosts("admin")[0];
    churn::remove_host(&mut changed, old_admin);
    let template_eng = original.role_hosts("eng")[0];
    let new_eng = HostAddr::from_octets(10, 0, 0, 200);
    churn::add_host_like(&mut changed, template_eng, new_eng);

    let after = classify(&changed.connsets, &params());
    let corr = correlate(
        &original.connsets,
        &before.grouping,
        &changed.connsets,
        &after.grouping,
        &params(),
    );
    let renamed = apply_correlation(&corr, &after.grouping);

    // "Every group in the new results is correlated with an old group."
    assert!(
        corr.new_groups.is_empty(),
        "uncorrelated groups: {:?}",
        corr.new_groups
    );
    // Old groups may legitimately dissolve when the re-grouping has
    // fewer groups than before; anything beyond that is a correlation
    // failure.
    assert!(
        corr.vanished_groups.len() <= before.grouping.group_count() - after.grouping.group_count(),
        "vanished: {:?}",
        corr.vanished_groups
    );

    // The role swap follows behavior: the host now *playing* unix_mail
    // (physically ms_exchange's old address) sits in unix_mail's old
    // group.
    assert_eq!(
        renamed.group_of(ms_exchange),
        before.grouping.group_of(unix_mail)
    );
    assert_eq!(
        renamed.group_of(unix_mail),
        before.grouping.group_of(ms_exchange)
    );

    // The new NT server takes the old one's place.
    assert_eq!(renamed.group_of(new_nt), before.grouping.group_of(old_nt));

    // The new eng machine joins the eng group.
    assert_eq!(renamed.group_of(new_eng), renamed.group_of(template_eng));

    // Bookkeeping: added/removed hosts were detected.
    assert!(corr.added_hosts.contains(&new_nt));
    assert!(corr.added_hosts.contains(&new_eng));
    assert!(corr.removed_hosts.contains(&old_admin));
    assert!(corr.removed_hosts.contains(&old_nt));
}

#[test]
fn server_split_correlates_to_original_group() {
    // Section 5.1: "an existing server machine may be replaced by two
    // new machines that do load sharing among client machines. The
    // logical roles of the client machines have not changed."
    let original = scenarios::mazu(42);
    let before = classify(&original.connsets, &params());
    let mut changed = original.clone();
    let exch = original.host("ms_exchange");
    let r1 = HostAddr::from_octets(10, 0, 3, 1);
    let r2 = HostAddr::from_octets(10, 0, 3, 2);
    churn::split_server(&mut changed, exch, r1, r2);

    let after = classify(&changed.connsets, &params());
    let corr = correlate(
        &original.connsets,
        &before.grouping,
        &changed.connsets,
        &after.grouping,
        &params(),
    );
    let renamed = apply_correlation(&corr, &after.grouping);

    // The client side keeps its identity.
    let sales = original.role_hosts("sales")[0];
    assert_eq!(
        renamed.group_of(sales),
        before.grouping.group_of(sales),
        "sales group id should survive the server split"
    );
    // And the replicas land in some group correlated to the old
    // Exchange-side structure (same id as the old exchange group when
    // the grouping puts them together with the NT server again).
    assert!(renamed.group_of(r1).is_some());
    assert!(renamed.group_of(r2).is_some());
}

#[test]
fn no_change_means_empty_diff() {
    let net = scenarios::mazu(7);
    let a = classify(&net.connsets, &params());
    let b = classify(&net.connsets, &params());
    let corr = correlate(
        &net.connsets,
        &a.grouping,
        &net.connsets,
        &b.grouping,
        &params(),
    );
    let renamed = apply_correlation(&corr, &b.grouping);
    let diff = diff_groupings(&a.grouping, &renamed);
    assert!(diff.is_empty(), "diff:\n{}", diff.render());
}

#[test]
fn heavy_churn_keeps_majority_of_ids() {
    // Remove 5 hosts, add 5 hosts: most group ids survive.
    let original = scenarios::mazu(42);
    let before = classify(&original.connsets, &params());
    let mut changed = original.clone();
    for i in 0..5 {
        let victim = changed.role_hosts("lab")[i];
        churn::remove_host(&mut changed, victim);
    }
    for i in 0..5u8 {
        let template = changed.role_hosts("eng")[i as usize];
        churn::add_host_like(&mut changed, template, HostAddr::from_octets(10, 0, 4, i));
    }
    let after = classify(&changed.connsets, &params());
    let corr = correlate(
        &original.connsets,
        &before.grouping,
        &changed.connsets,
        &after.grouping,
        &params(),
    );
    assert!(
        corr.id_map.len() * 10 >= after.grouping.group_count() * 7,
        "only {}/{} groups correlated",
        corr.id_map.len(),
        after.grouping.group_count()
    );
}
