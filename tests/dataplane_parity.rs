//! Parity suite: the columnar data plane against the map-based
//! executable spec (`flow::reference`).
//!
//! The contract (see DESIGN.md "Data plane"): for any sequence of
//! mutations, `flow::ConnectionSets` and `flow::reference::ConnectionSets`
//! agree on every accessor, and classification built on the columnar
//! plane produces bit-identical groupings and correlations to one built
//! from the reference representation. Synthetic scenarios provide the
//! workloads; a seeded op script exercises the mutators.

use flow::{reference, ConnectionSets, HostAddr, PairStats};
use roleclass::{try_classify, try_correlate, Classification, Correlation, Grouping, Params};
use std::collections::BTreeSet;
use synthnet::{churn, scenarios, SyntheticNetwork};

// Local shims over the fallible entry points (the panicking wrappers
// are deprecated).
fn classify(cs: &ConnectionSets, p: &Params) -> Classification {
    try_classify(cs, p).unwrap()
}

fn correlate(
    prev_cs: &ConnectionSets,
    prev_g: &Grouping,
    curr_cs: &ConnectionSets,
    curr_g: &Grouping,
    p: &Params,
) -> Correlation {
    try_correlate(prev_cs, prev_g, curr_cs, curr_g, p).unwrap()
}

/// Rebuilds the map-based spec from scratch so the two representations
/// share only their logical content, not their construction path.
fn rebuild_reference(cs: &ConnectionSets) -> reference::ConnectionSets {
    let mut out = reference::ConnectionSets::new();
    for h in cs.hosts() {
        out.add_host(h);
    }
    for ((a, b), stats) in cs.pairs() {
        out.add_connection(a, b, stats);
    }
    for h in cs.hosts() {
        let (i, acc) = (cs.initiated_flows(h), cs.accepted_flows(h));
        if i != 0 || acc != 0 {
            out.add_direction_counts(h, i, acc);
        }
    }
    out
}

/// Asserts every accessor agrees between the two representations.
/// `pair_sample` bounds the quadratic similarity sweep on big networks.
fn assert_accessor_parity(cs: &ConnectionSets, r: &reference::ConnectionSets, pair_sample: usize) {
    assert_eq!(cs.host_count(), r.host_count());
    assert_eq!(cs.connection_count(), r.connection_count());
    assert_eq!(cs.is_empty(), r.is_empty());
    assert_eq!(cs.max_degree(), r.max_degree());

    let hosts: Vec<HostAddr> = cs.hosts().collect();
    let ref_hosts: Vec<HostAddr> = r.hosts().collect();
    assert_eq!(hosts, ref_hosts, "host iteration order must match");

    for &h in &hosts {
        assert!(r.contains(h));
        assert_eq!(cs.degree(h), r.degree(h));
        let nbrs: Vec<HostAddr> = cs.neighbors(h).expect("listed host").iter().collect();
        let ref_nbrs: Vec<HostAddr> = r
            .neighbors(h)
            .expect("listed host")
            .iter()
            .copied()
            .collect();
        assert_eq!(nbrs, ref_nbrs, "neighbors of {h}");
        assert_eq!(cs.initiated_flows(h), r.initiated_flows(h));
        assert_eq!(cs.accepted_flows(h), r.accepted_flows(h));
        assert_eq!(cs.server_ratio(h), r.server_ratio(h));
    }
    // A host neither side knows.
    let ghost = HostAddr::v6(u128::MAX);
    assert_eq!(cs.contains(ghost), r.contains(ghost));
    assert_eq!(cs.degree(ghost), r.degree(ghost));
    assert!(cs.neighbors(ghost).is_none() && r.neighbors(ghost).is_none());

    let pairs: Vec<((HostAddr, HostAddr), PairStats)> = cs.pairs().collect();
    let ref_pairs: Vec<((HostAddr, HostAddr), PairStats)> = r.pairs().collect();
    assert_eq!(pairs, ref_pairs, "pair enumeration must match");
    assert_eq!(cs.edges(), r.edges());
    for &((a, b), stats) in pairs.iter().take(pair_sample) {
        assert!(cs.connected(a, b) && r.connected(a, b));
        assert_eq!(cs.pair_stats(a, b), Some(stats));
        assert_eq!(r.pair_stats(a, b), Some(stats));
    }
    for (i, &a) in hosts.iter().take(pair_sample).enumerate() {
        for &b in hosts.iter().take(pair_sample).skip(i) {
            assert_eq!(
                cs.similarity(a, b),
                r.similarity(a, b),
                "similarity({a},{b})"
            );
            assert_eq!(cs.connected(a, b), r.connected(a, b));
        }
    }
}

fn scenario_suite() -> Vec<(&'static str, SyntheticNetwork)> {
    vec![
        ("figure1", scenarios::figure1(3, 3)),
        ("small_office", scenarios::small_office(11)),
        ("mazu", scenarios::mazu(7)),
        ("datacenter", scenarios::datacenter(3)),
        ("big_company", scenarios::big_company(5)),
    ]
}

#[test]
fn accessors_agree_on_synth_scenarios() {
    for (name, net) in scenario_suite() {
        let r = rebuild_reference(&net.connsets);
        assert_accessor_parity(&net.connsets, &r, 60);
        // Round-tripping through the spec is lossless.
        let back = ConnectionSets::from_reference(&r);
        assert_eq!(back, net.connsets, "{name}: reference round trip");
        assert_eq!(net.connsets.to_reference(), r, "{name}: to_reference");
    }
}

#[test]
fn mutators_agree_under_seeded_op_script() {
    // A deterministic LCG drives the same mutation script through both
    // representations; parity is checked after every batch.
    let mut state = 0x5DEECE66Du64;
    let mut next = move || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as u32
    };
    let mut cs = ConnectionSets::new();
    let mut r = reference::ConnectionSets::new();
    for round in 0..6 {
        for _ in 0..120 {
            let (a, b) = (next() % 64, next() % 64);
            if a == b {
                continue;
            }
            match next() % 4 {
                0 => {
                    cs.add_pair(HostAddr::v4(a), HostAddr::v4(b));
                    r.add_pair(HostAddr::v4(a), HostAddr::v4(b));
                }
                1 => {
                    let stats = PairStats {
                        flows: u64::from(next() % 9 + 1),
                        packets: u64::from(next() % 100),
                        bytes: u64::from(next()),
                    };
                    cs.add_connection(HostAddr::v4(a), HostAddr::v4(b), stats);
                    r.add_connection(HostAddr::v4(a), HostAddr::v4(b), stats);
                }
                2 => {
                    cs.add_host(HostAddr::v6(u128::from(a)));
                    r.add_host(HostAddr::v6(u128::from(a)));
                }
                _ => {
                    let (i, acc) = (u64::from(next() % 50), u64::from(next() % 50));
                    cs.add_direction_counts(HostAddr::v4(a), i, acc);
                    r.add_direction_counts(HostAddr::v4(a), i, acc);
                }
            }
        }
        // Removals and a retain pass.
        let victim = HostAddr::v4(next() % 64);
        assert_eq!(cs.remove_host(victim), r.remove_host(victim));
        if round % 2 == 1 {
            let keep: BTreeSet<HostAddr> =
                cs.hosts().filter(|h| h.as_u32() % 5 != round % 5).collect();
            cs.retain_hosts(&keep);
            r.retain_hosts(&keep);
        }
        assert_accessor_parity(&cs, &r, usize::MAX);
        // hosts_not_in agrees in both directions against a shifted copy.
        let mut other = cs.clone();
        other.add_host(HostAddr::v4(9_999));
        other.remove_host(HostAddr::v4(next() % 64));
        let other_ref = rebuild_reference(&other);
        assert_eq!(cs.hosts_not_in(&other), {
            // The reference signature takes its own type; compare sets.
            r.hosts_not_in(&other_ref)
        });
        assert_eq!(other.hosts_not_in(&cs), other_ref.hosts_not_in(&r));
    }
}

fn assert_grouping_parity(name: &str, net: &SyntheticNetwork) {
    let params = Params::default();
    let fast = classify(&net.connsets, &params);
    let round_tripped = ConnectionSets::from_reference(&rebuild_reference(&net.connsets));
    let spec = classify(&round_tripped, &params);
    assert_eq!(
        fast.grouping, spec.grouping,
        "{name}: grouping must be bit-identical across data planes"
    );
}

#[test]
fn groupings_are_bit_identical_via_reference_round_trip() {
    for (name, net) in scenario_suite() {
        if name == "big_company" {
            continue; // minutes of debug-build classify; see the ignored test below
        }
        assert_grouping_parity(name, &net);
    }
}

/// The same grouping-parity check on the 3638-host scenario. Ignored by
/// default (two debug-build classifications take minutes); run with
/// `cargo test --release -- --ignored` before touching the data plane.
#[test]
#[ignore = "classifies big_company twice; minutes in a debug build"]
fn groupings_are_bit_identical_on_big_company() {
    assert_grouping_parity("big_company", &scenarios::big_company(5));
}

/// Satellite regression for the merged-pass `retain_hosts` /
/// `hosts_not_in`: on a 10k-host synthetic trace, the single sorted
/// sweep must agree with the map-based spec exactly.
#[test]
fn retain_and_diff_agree_on_10k_host_trace() {
    use synthnet::{ConnRule, Fanout, NetworkModel, RoleSpec};

    let mut m = NetworkModel::new();
    let clients = m.role(RoleSpec::clients("client", 9_900));
    let servers = m.role(RoleSpec::servers("server", 100));
    m.rule(ConnRule::new(clients, servers, Fanout::Exactly(3)));
    let net = m.generate(42);
    assert_eq!(net.host_count(), 10_000);

    // retain_hosts: keep roughly half, in one merged pass.
    let keep: BTreeSet<HostAddr> = net
        .connsets
        .hosts()
        .filter(|h| h.as_u32() % 2 == 0)
        .collect();
    let mut fast = net.connsets.clone();
    let mut spec = rebuild_reference(&net.connsets);
    fast.retain_hosts(&keep);
    spec.retain_hosts(&keep);
    assert_eq!(fast.host_count(), keep.len());
    assert_accessor_parity(&fast, &spec, 40);

    // hosts_not_in: two-pointer merge over the sorted representations.
    let departed = net.connsets.hosts_not_in(&fast);
    let expected: BTreeSet<HostAddr> = net.connsets.hosts().filter(|h| !keep.contains(h)).collect();
    assert_eq!(departed, expected);
    assert!(fast.hosts_not_in(&net.connsets).is_empty());
}

#[test]
fn correlations_are_bit_identical_via_reference_round_trip() {
    let params = Params::default();
    for (name, mut net) in scenario_suite() {
        if name == "big_company" {
            continue; // covered by the grouping test; correlation doubles the cost
        }
        let prev = net.connsets.clone();
        // A churned next window: one host replaced, one cloned.
        let hosts: Vec<HostAddr> = prev.hosts().collect();
        churn::replace_host(&mut net, hosts[0], HostAddr::v4(0xFFFF_0001));
        if hosts.len() > 2 {
            churn::add_host_like(&mut net, hosts[2], HostAddr::v4(0xFFFF_0002));
        }
        let curr = net.connsets.clone();

        let run = |p: &ConnectionSets, c: &ConnectionSets| {
            let pg = classify(p, &params).grouping;
            let cg = classify(c, &params).grouping;
            let corr = correlate(p, &pg, c, &cg, &params);
            serde_json::to_string(&(pg, cg, corr)).expect("serializable")
        };
        let fast = run(&prev, &curr);
        let spec = run(
            &ConnectionSets::from_reference(&rebuild_reference(&prev)),
            &ConnectionSets::from_reference(&rebuild_reference(&curr)),
        );
        assert_eq!(fast, spec, "{name}: correlation must be bit-identical");
    }
}
