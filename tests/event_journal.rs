//! End-to-end decision provenance: one degraded, multi-window pipeline
//! run with churn must produce every declared event type, in both the
//! in-memory journal and the durable flight-recorder journal, and every
//! journal line must parse as JSON carrying a declared name.

use role_classification::aggregator::{
    read_journal_lines, Aggregator, AggregatorConfig, Checkpointer, FlightRecorder, Probe,
    ProbeError, RecoverySource, ReplayProbe, RunStore, SupervisorConfig, AGGREGATOR_EVENT_NAMES,
    STORAGE_EVENT_NAMES,
};
use role_classification::flow::{FlowRecord, HostAddr};
use role_classification::roleclass::{
    EngineConfig, Params, ENGINE_EVENT_NAMES, STABILITY_EVENT_NAMES,
};
use role_classification::storage::{MemoryBackend, NamespaceProfile, Retention};
use role_classification::telemetry::Recorder;
use serde::value::Value;
use std::collections::BTreeSet;
use std::sync::Arc;

fn h(x: u32) -> HostAddr {
    HostAddr::v4(x)
}

/// One window of figure-1-style traffic. From window 2 on, the pod-B
/// source-control server (host 4) disappears — its group id retires —
/// and a brand-new isolated pair 31↔32 appears, minting a fresh id.
fn window_trace(window: u64) -> Vec<FlowRecord> {
    let base = window * 1000;
    let mut out = Vec::new();
    let mut push = |a: u32, b: u32, off: u64| {
        let mut f = FlowRecord::pair(h(a), h(b));
        f.start_ms = base + off;
        out.push(f);
    };
    for (i, s) in [11, 12, 13].into_iter().enumerate() {
        push(s, 1, i as u64);
        push(s, 2, 10 + i as u64);
        push(s, 3, 20 + i as u64);
    }
    for (i, e) in [21, 22, 23].into_iter().enumerate() {
        push(e, 1, 30 + i as u64);
        push(e, 2, 40 + i as u64);
        if window < 2 {
            push(e, 4, 50 + i as u64);
        }
    }
    if window >= 2 {
        push(31, 32, 60);
    }
    out
}

/// A probe that dies fatally on its first poll: the first window fails,
/// every later window skips it (quarantined) — both probe event types.
struct FatalProbe;

impl Probe for FatalProbe {
    fn name(&self) -> &str {
        "flaky"
    }
    fn poll(&mut self, _: u64, _: u64) -> Result<Vec<FlowRecord>, ProbeError> {
        Err(ProbeError::Fatal("device gone".into()))
    }
    fn horizon_ms(&self) -> Option<u64> {
        Some(0)
    }
}

fn field<'a>(v: &'a Value, key: &str) -> &'a Value {
    match v {
        Value::Map(m) => &m.iter().find(|(k, _)| k == key).expect("missing field").1,
        other => panic!("expected object, got {}", other.kind()),
    }
}

#[test]
fn degraded_pipeline_produces_every_declared_event_type() {
    let dir = std::env::temp_dir().join(format!("roleclass-events-e2e-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    let ck = Checkpointer::new(dir.join("history.ckpt"));

    let recorder = Arc::new(Recorder::new());
    let mut agg = Aggregator::try_new(AggregatorConfig {
        window_ms: 1000,
        origin_ms: 0,
        engine: EngineConfig::new(Params::default().with_s_lo(90.0).with_s_hi(95.0)),
        min_flows: 1,
        supervisor: SupervisorConfig::immediate(),
        ..AggregatorConfig::default()
    })
    .unwrap()
    .with_recorder(Arc::clone(&recorder))
    .with_flight_recorder(FlightRecorder::open(ck.journal_path()).unwrap())
    // Run history with a two-window retention cap: over four windows,
    // both storage event types (history_recorded + retention_pruned)
    // must fire.
    .with_run_store(Arc::new(
        RunStore::open(
            Arc::new(MemoryBackend::new()),
            "runs",
            NamespaceProfile::log(Retention::unbounded().keep_records(2)),
        )
        .unwrap(),
    ));

    // Four windows; the structure churns after window 1, so correlation
    // carries, mints, and retires ids.
    let trace: Vec<FlowRecord> = (0..4).flat_map(window_trace).collect();
    agg.attach(Box::new(ReplayProbe::new("good", trace)));
    agg.attach(Box::new(FatalProbe));
    let cycles = agg.drain();
    assert_eq!(cycles, 4);
    agg.checkpoint(&ck).unwrap();

    // Restart: restore is journaled too (checkpoint_restored).
    let mut fresh = Aggregator::try_new(AggregatorConfig {
        window_ms: 1000,
        origin_ms: 0,
        engine: EngineConfig::new(Params::default().with_s_lo(90.0).with_s_hi(95.0)),
        min_flows: 1,
        supervisor: SupervisorConfig::immediate(),
        ..AggregatorConfig::default()
    })
    .unwrap()
    .with_recorder(Arc::clone(&recorder))
    .with_flight_recorder(FlightRecorder::open(ck.journal_path()).unwrap());
    let recovery = fresh.restore_from(&ck);
    assert_eq!(recovery.source, RecoverySource::Primary);

    // Every declared event type — engine, aggregator, and stability
    // alike — occurred.
    let events = recorder.events().snapshot();
    let seen: BTreeSet<&str> = events.iter().map(|e| e.name).collect();
    for name in ENGINE_EVENT_NAMES
        .iter()
        .chain(AGGREGATOR_EVENT_NAMES)
        .chain(STABILITY_EVENT_NAMES)
        .chain(STORAGE_EVENT_NAMES)
    {
        assert!(seen.contains(name), "event type {name} never emitted");
    }
    // And nothing undeclared was emitted.
    for ev in &events {
        let declared = match ev.layer {
            "engine" => ENGINE_EVENT_NAMES.contains(&ev.name),
            "aggregator" => AGGREGATOR_EVENT_NAMES.contains(&ev.name),
            "stability" => STABILITY_EVENT_NAMES.contains(&ev.name),
            "storage" => STORAGE_EVENT_NAMES.contains(&ev.name),
            other => panic!("unexpected layer {other}"),
        };
        assert!(declared, "{} not declared for layer {}", ev.name, ev.layer);
    }

    // Every durable journal line parses as JSON with a declared
    // aggregator or stability event name and a dense sequence.
    let lines = read_journal_lines(ck.journal_path()).unwrap();
    assert!(!lines.is_empty());
    for (i, line) in lines.iter().enumerate() {
        let v: Value = serde_json::from_str(line).expect("journal line must parse");
        assert_eq!(field(&v, "seq"), &Value::U64(i as u64));
        let Value::Str(layer) = field(&v, "layer") else {
            panic!("layer must be a string");
        };
        let Value::Str(name) = field(&v, "name") else {
            panic!("name must be a string");
        };
        let declared = match layer.as_str() {
            "aggregator" => AGGREGATOR_EVENT_NAMES.contains(&name.as_str()),
            "stability" => STABILITY_EVENT_NAMES.contains(&name.as_str()),
            "storage" => STORAGE_EVENT_NAMES.contains(&name.as_str()),
            other => panic!("unexpected journal layer {other}"),
        };
        assert!(declared, "{name} not declared for journal layer {layer}");
    }
    let _ = std::fs::remove_dir_all(&dir);
}
