//! Workspace-wide lint over the declared metric and event names: every
//! layer's `*_METRIC_NAMES` / `*_EVENT_NAMES` list must be unique,
//! snake_case, and prefixed with `roleclass_<layer>_` (DESIGN.md §7's
//! naming convention).

use role_classification::aggregator::{
    AGGREGATOR_EVENT_NAMES, AGGREGATOR_METRIC_NAMES, STORAGE_EVENT_NAMES, STORAGE_METRIC_NAMES,
    TRANSPORT_EVENT_NAMES, TRANSPORT_METRIC_NAMES,
};
use role_classification::flow::FLOW_METRIC_NAMES;
use role_classification::netgraph::KERNEL_METRIC_NAMES;
use role_classification::roleclass::{
    ENGINE_EVENT_NAMES, ENGINE_METRIC_NAMES, STABILITY_EVENT_NAMES, STABILITY_METRIC_NAMES,
};
use role_classification::telemetry::PROFILE_METRIC_NAMES;
use std::collections::BTreeSet;

fn layers() -> [(&'static str, &'static [&'static str]); 8] {
    [
        ("roleclass_flow_", FLOW_METRIC_NAMES),
        ("roleclass_kernel_", KERNEL_METRIC_NAMES),
        ("roleclass_engine_", ENGINE_METRIC_NAMES),
        ("roleclass_aggregator_", AGGREGATOR_METRIC_NAMES),
        ("roleclass_stability_", STABILITY_METRIC_NAMES),
        ("roleclass_transport_", TRANSPORT_METRIC_NAMES),
        ("roleclass_storage_", STORAGE_METRIC_NAMES),
        ("roleclass_profile_", PROFILE_METRIC_NAMES),
    ]
}

fn event_layers() -> [(&'static str, &'static [&'static str]); 5] {
    [
        ("roleclass_engine_", ENGINE_EVENT_NAMES),
        ("roleclass_aggregator_", AGGREGATOR_EVENT_NAMES),
        ("roleclass_stability_", STABILITY_EVENT_NAMES),
        ("roleclass_transport_", TRANSPORT_EVENT_NAMES),
        ("roleclass_storage_", STORAGE_EVENT_NAMES),
    ]
}

/// Every declared name, metric or event, across every layer.
fn all_declarations() -> Vec<(&'static str, &'static [&'static str])> {
    layers().into_iter().chain(event_layers()).collect()
}

#[test]
fn metric_and_event_names_are_unique_across_layers() {
    // Metrics and events share one namespace: an event named after a
    // metric would make journal greps and dashboards ambiguous.
    let mut seen = BTreeSet::new();
    for (_, names) in all_declarations() {
        for name in names {
            assert!(seen.insert(*name), "duplicate declared name {name}");
        }
    }
    assert!(!seen.is_empty());
}

#[test]
fn metric_names_are_snake_case_and_layer_prefixed() {
    for (prefix, names) in all_declarations() {
        assert!(!names.is_empty(), "layer {prefix} declares no names");
        for name in names {
            assert!(
                name.starts_with(prefix),
                "{name} must start with its layer prefix {prefix}"
            );
            let mut chars = name.chars();
            let first = chars.next().unwrap();
            assert!(
                first.is_ascii_lowercase(),
                "{name} must start with a lowercase letter"
            );
            assert!(
                chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{name} must match [a-z][a-z0-9_]*"
            );
            assert!(!name.contains("__"), "{name} has a double underscore");
            assert!(!name.ends_with('_'), "{name} ends with an underscore");
        }
    }
}

#[test]
fn metric_name_lists_are_sorted() {
    // Sorted lists keep the declarations greppable and diffs minimal.
    for (_, names) in all_declarations() {
        let mut sorted = names.to_vec();
        sorted.sort_unstable();
        assert_eq!(names, sorted.as_slice());
    }
}
