//! Workspace-wide lint over the declared metric names: every layer's
//! `*_METRIC_NAMES` list must be unique, snake_case, and prefixed with
//! `roleclass_<layer>_` (DESIGN.md §7's naming convention).

use role_classification::aggregator::AGGREGATOR_METRIC_NAMES;
use role_classification::flow::FLOW_METRIC_NAMES;
use role_classification::netgraph::KERNEL_METRIC_NAMES;
use role_classification::roleclass::ENGINE_METRIC_NAMES;
use std::collections::BTreeSet;

fn layers() -> [(&'static str, &'static [&'static str]); 4] {
    [
        ("roleclass_flow_", FLOW_METRIC_NAMES),
        ("roleclass_kernel_", KERNEL_METRIC_NAMES),
        ("roleclass_engine_", ENGINE_METRIC_NAMES),
        ("roleclass_aggregator_", AGGREGATOR_METRIC_NAMES),
    ]
}

#[test]
fn metric_names_are_unique_across_layers() {
    let mut seen = BTreeSet::new();
    for (_, names) in layers() {
        for name in names {
            assert!(seen.insert(*name), "duplicate metric name {name}");
        }
    }
    assert!(!seen.is_empty());
}

#[test]
fn metric_names_are_snake_case_and_layer_prefixed() {
    for (prefix, names) in layers() {
        assert!(!names.is_empty(), "layer {prefix} declares no metrics");
        for name in names {
            assert!(
                name.starts_with(prefix),
                "{name} must start with its layer prefix {prefix}"
            );
            let mut chars = name.chars();
            let first = chars.next().unwrap();
            assert!(
                first.is_ascii_lowercase(),
                "{name} must start with a lowercase letter"
            );
            assert!(
                chars.all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_'),
                "{name} must match [a-z][a-z0-9_]*"
            );
            assert!(!name.contains("__"), "{name} has a double underscore");
            assert!(!name.ends_with('_'), "{name} ends with an underscore");
        }
    }
}

#[test]
fn metric_name_lists_are_sorted() {
    // Sorted lists keep the declarations greppable and diffs minimal.
    for (_, names) in layers() {
        let mut sorted = names.to_vec();
        sorted.sort_unstable();
        assert_eq!(names, sorted.as_slice());
    }
}
