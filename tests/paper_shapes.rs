//! Assertions on the paper's headline result *shapes* (see
//! EXPERIMENTS.md for the measured-vs-paper numbers).

use role_classification::cluster::metrics;
use role_classification::flow::ConnectionSets;
use role_classification::roleclass::{
    try_classify, try_form_groups, Classification, FormationKind, FormationResult, Params,
};

// Local shims over the fallible entry points (the panicking wrappers
// are deprecated).
fn classify(cs: &ConnectionSets, p: &Params) -> Classification {
    try_classify(cs, p).unwrap()
}

fn form_groups(cs: &ConnectionSets, p: &Params) -> FormationResult {
    try_form_groups(cs, p).unwrap()
}
use role_classification::synthnet::scenarios;

#[test]
fn figure2_formation_walkthrough() {
    let net = scenarios::figure1(3, 3);
    let r = form_groups(&net.connsets, &Params::default());
    assert_eq!(r.groups.len(), 5);
    // {Mail, Web} at k = 6.
    let mw = r
        .trace
        .iter()
        .find(|e| e.members.contains(&net.host("mail")))
        .expect("mail grouped");
    assert_eq!(mw.k, 6);
    assert_eq!(mw.kind, FormationKind::Bcc);
    // Client cliques at k = 3.
    let sales = r
        .trace
        .iter()
        .find(|e| e.members.contains(&net.role_hosts("sales")[0]))
        .expect("sales grouped");
    assert_eq!(sales.k, 3);
    assert_eq!(sales.members.len(), 3);
    // Database singletons via bootstrap at k = 1.
    let db = r
        .trace
        .iter()
        .find(|e| e.members == vec![net.host("sales_db")])
        .expect("db grouped");
    assert_eq!(db.k, 1);
    assert_eq!(db.kind, FormationKind::Bootstrap);
}

#[test]
fn mazu_grouping_reflects_logical_structure() {
    let net = scenarios::mazu(42);
    let c = classify(&net.connsets, &Params::default());

    // One-to-two orders of magnitude reduction (paper: 110 -> 25).
    let groups = c.grouping.group_count();
    assert!(
        (5..=40).contains(&groups),
        "expected a big reduction, got {groups} groups"
    );

    // Engineering hosts share a group with other engineering hosts.
    let eng = net.role_hosts("eng");
    let g0 = c.grouping.group_of(eng[0]).unwrap();
    let eng_together = eng
        .iter()
        .filter(|&&e| c.grouping.group_of(e) == Some(g0))
        .count();
    assert!(eng_together * 2 > eng.len(), "eng hosts scattered");

    // The paper's signature observation: engineering *managers* (who use
    // Exchange) are grouped with sales, not with engineering.
    let mgr = net.role_hosts("eng_mgr")[0];
    let sales = net.role_hosts("sales")[0];
    assert_eq!(c.grouping.group_of(mgr), c.grouping.group_of(sales));
    assert_ne!(c.grouping.group_of(mgr), Some(g0));

    // Exchange and the NT server share a group (the paper's group 71);
    // the Unix mail server is elsewhere.
    let exch = net.host("ms_exchange");
    let nt = net.host("nt_server");
    let unix_mail = net.host("unix_mail");
    assert_eq!(c.grouping.group_of(exch), c.grouping.group_of(nt));
    assert_ne!(c.grouping.group_of(exch), c.grouping.group_of(unix_mail));

    // Lab machines land in one group (the paper's group 80).
    let lab = net.role_hosts("lab");
    let lab_group = c.grouping.group_of(lab[0]).unwrap();
    let lab_together = lab
        .iter()
        .filter(|&&l| c.grouping.group_of(l) == Some(lab_group))
        .count();
    assert_eq!(lab_together, lab.len());

    // Rand statistic against ground truth in the paper's ballpark
    // (paper: 0.8363 against the admin's partitioning).
    let r = metrics::rand_statistic(&net.truth.partition(), &c.grouping.as_partition());
    assert!(r > 0.80, "Rand statistic {r} below the paper's ballpark");
}

#[test]
fn slo_sweep_is_monotone_and_khi_stabilizes() {
    let net = scenarios::mazu(42);

    // Figure 6 shape: group count non-decreasing in S^lo.
    let mut last = 0usize;
    for s_lo in [0.0, 25.0, 55.0, 75.0, 95.0] {
        let p = Params::default().with_s_lo(s_lo).with_s_hi(99.0);
        let c = classify(&net.connsets, &p);
        assert!(
            c.grouping.group_count() >= last,
            "figure 6 monotonicity violated at S^lo = {s_lo}"
        );
        last = c.grouping.group_count();
    }

    // Figure 7 shape: group count stabilizes for K^hi above a small
    // threshold (the paper: unchanged for K^hi >= 4 on Mazu).
    let count_at = |k_hi: u32| {
        classify(&net.connsets, &Params::default().with_k_hi(k_hi))
            .grouping
            .group_count()
    };
    let at8 = count_at(8);
    for k_hi in 9..=14 {
        assert_eq!(
            count_at(k_hi),
            at8,
            "figure 7 plateau violated at K^hi={k_hi}"
        );
    }
    // And K^hi = 0 (always strict) yields at least as many groups.
    assert!(count_at(0) >= at8);
}

#[test]
fn grouping_beats_naive_baselines_on_mazu() {
    use role_classification::cluster::{similarity_components, SimilarityComponentsConfig};
    let net = scenarios::mazu(42);
    let truth = net.truth.partition();
    let c = classify(&net.connsets, &Params::default());
    let ours = metrics::adjusted_rand_index(&truth, &c.grouping.as_partition());

    for min_common in [1, 2] {
        let cc = similarity_components(&net.connsets, &SimilarityComponentsConfig { min_common });
        let theirs = metrics::adjusted_rand_index(&truth, &cc);
        assert!(
            ours > theirs,
            "cc-threshold({min_common}) ARI {theirs} >= ours {ours}"
        );
    }
}
