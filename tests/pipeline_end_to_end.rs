//! End-to-end integration: synthetic network → fabricated flows → wire
//! formats → parsers → aggregator → classification → correlation →
//! policies/alerts. Exercises every crate in one pipeline.

use role_classification::aggregator::{
    Aggregator, AggregatorConfig, LabelStore, NewNeighborDetector, Policy, PolicyEngine,
    ReplayProbe, Selector,
};
use role_classification::flow::{netflow, pcap, ConnsetBuilder, FlowRecord};
use role_classification::roleclass::{try_classify, EngineConfig, Params};
use role_classification::synthnet::{scenarios, trace};

/// Formation-preserving parameters (more groups, more structure).
fn params() -> Params {
    Params::default().with_s_lo(90.0).with_s_hi(95.0)
}

#[test]
fn wire_formats_reconstruct_connection_sets() {
    let net = scenarios::figure1(4, 5);
    let records = trace::expand(&net.connsets, trace::TraceOptions::default(), 11);

    // NetFlow v5 round trip.
    let nf = netflow::write_stream(&records, 0);
    let from_nf = netflow::parse_stream(&nf).expect("valid netflow");
    assert_eq!(from_nf.len(), records.len());

    // pcap round trip (TCP/UDP only, which expand() always emits).
    let pc = pcap::write_file(&records);
    let from_pc = pcap::parse_file(&pc).expect("valid pcap");
    assert_eq!(from_pc.skipped, 0);

    let build = |rs: &[FlowRecord]| {
        let mut b = ConnsetBuilder::new();
        b.add_records(rs.iter());
        b.build()
    };
    assert_eq!(build(&from_nf).edges(), net.connsets.edges());
    assert_eq!(build(&from_pc.records).edges(), net.connsets.edges());
}

#[test]
fn aggregator_produces_stable_grouping_over_days() {
    let net = scenarios::mazu(42);
    // Two identical days of traffic.
    let mut all = Vec::new();
    for day in 0..2u64 {
        let opts = trace::TraceOptions {
            start_ms: day * 86_400_000,
            span_ms: 86_400_000,
            ..trace::TraceOptions::default()
        };
        all.extend(trace::expand(&net.connsets, opts, 5 + day));
    }
    let mut agg = Aggregator::new(AggregatorConfig {
        window_ms: 86_400_000,
        origin_ms: 0,
        engine: EngineConfig::new(params()),
        min_flows: 1,
        ..AggregatorConfig::default()
    });
    agg.attach(Box::new(ReplayProbe::new("p", all)));
    let cycles = agg.drain();
    assert_eq!(cycles, 2);

    let history = agg.history();
    let history = history.read();
    let day0 = &history[0];
    let day1 = &history[1];
    assert!(day1.correlation.is_some());
    // Same network, same structure: every host keeps its group id.
    let mut stable = 0;
    let mut total = 0;
    for (h, g0) in day0.grouping.assignments() {
        if let Some(g1) = day1.grouping.group_of(h) {
            total += 1;
            if g0 == g1 {
                stable += 1;
            }
        }
    }
    assert!(total > 100);
    assert!(
        stable as f64 / total as f64 > 0.95,
        "only {stable}/{total} hosts kept their group id"
    );
}

#[test]
fn policy_and_anomaly_detection_fire_on_role_deviation() {
    let net = scenarios::mazu(42);
    let c = try_classify(&net.connsets, &params()).unwrap();

    let eng = net.role_hosts("eng")[0];
    let exch = net.host("ms_exchange");
    let eng_group = c.grouping.group_of(eng).expect("grouped");
    let exch_group = c.grouping.group_of(exch).expect("grouped");
    assert_ne!(eng_group, exch_group);

    let mut labels = LabelStore::new();
    labels.set(eng_group, "eng");
    labels.set(exch_group, "exchange");
    let mut engine = PolicyEngine::new();
    engine.add(Policy::Forbid {
        name: "eng-off-exchange".into(),
        from: Selector::Label("eng".into()),
        to: Selector::Label("exchange".into()),
    });

    let bad = FlowRecord::pair(eng, exch);
    assert_eq!(engine.check(&c.grouping, &labels, &bad).len(), 1);

    // The anomaly detector agrees, from structure alone. (In the Mazu
    // scenario no eng host talks to the Exchange server.)
    assert!(!net.connsets.connected(eng, exch));
    let det = NewNeighborDetector::new(c.grouping.clone(), &net.connsets, 10_000);
    let alerts = det.check_flow(&bad);
    assert_eq!(alerts.len(), 1);
}

#[test]
fn service_refinement_splits_mixed_servers() {
    use role_classification::roleclass::services::{split_by_services, ServiceProfiles};

    // Figure 1: Mail and Web end up in one group; port data splits them
    // (the paper's Section 8 extension).
    let net = scenarios::figure1(3, 3);
    let c = try_classify(&net.connsets, &params()).unwrap();
    let mail = net.host("mail");
    let web = net.host("web");
    assert_eq!(c.grouping.group_of(mail), c.grouping.group_of(web));

    let mut flows = Vec::new();
    for &client in net.role_hosts("sales").iter().chain(net.role_hosts("eng")) {
        let mut f = FlowRecord::pair(client, mail);
        f.src_port = 50_000;
        f.dst_port = 25;
        flows.push(f);
        let mut f = FlowRecord::pair(client, web);
        f.src_port = 50_001;
        f.dst_port = 80;
        flows.push(f);
    }
    let profiles = ServiceProfiles::from_flows(&flows);
    let refined = split_by_services(&c.grouping, &profiles, 0.5);
    assert_ne!(refined.group_of(mail), refined.group_of(web));
    assert_eq!(refined.host_count(), c.grouping.host_count());
}
