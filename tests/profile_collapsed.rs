//! Round-trip properties of the collapsed-stack exporter.
//!
//! The collapsed format is line-oriented with `;` separating frames and
//! a space separating the stack from its value — so span names
//! containing `;`, spaces, backslashes, control characters, or
//! non-ASCII unicode must escape on the way out and parse back exactly.
//! The property here is total: for an arbitrary two-level span forest
//! with hostile names, every emitted line parses, and the parsed
//! `(path, value)` multiset equals an independent self-time aggregation
//! of the same forest.

use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use role_classification::telemetry::{
    collapsed_stacks, parse_collapsed_line, ProfileTable, SpanNode,
};
use std::collections::BTreeMap;
use std::time::Duration;

fn node(name: String, ms: u64, children: Vec<SpanNode>) -> SpanNode {
    SpanNode {
        name,
        duration: Duration::from_millis(ms),
        alloc_bytes: 0,
        allocs: 0,
        children,
    }
}

/// Splices format-hostile characters into a generated name, driven by
/// the tag bits, so every run exercises `;`, space, `\`, control, and
/// multibyte cases — not just when the base string strategy happens to
/// produce them.
fn decorate(base: &str, tag: u8) -> String {
    let mut s = base.to_string();
    if tag & 1 != 0 {
        s.push(';');
    }
    if tag & 2 != 0 {
        s.insert(0, ' ');
    }
    if tag & 4 != 0 {
        s.push('\\');
    }
    if tag & 8 != 0 {
        s.push('\n');
    }
    if tag & 16 != 0 {
        s.push('é');
    }
    if tag & 32 != 0 {
        s.push('\t');
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every line of the export parses back, and the parsed paths and
    /// values reproduce an independently computed self-time account of
    /// the forest — escaping is lossless end to end.
    #[test]
    fn collapsed_export_round_trips(
        forest in prop::collection::vec(
            (
                "\\PC*",
                any::<u8>(),
                1u64..200,
                prop::collection::vec(("\\PC*", any::<u8>(), 1u64..50), 0..4),
            ),
            0..6,
        )
    ) {
        let roots: Vec<SpanNode> = forest
            .iter()
            .map(|(name, tag, ms, kids)| {
                let children = kids
                    .iter()
                    .map(|(n, t, m)| node(decorate(n, *t), *m, vec![]))
                    .collect();
                node(decorate(name, *tag), *ms, children)
            })
            .collect();

        // Independent expectation: self time in micros per distinct
        // root-prefixed path, duplicates summed.
        let mut expected: BTreeMap<Vec<String>, u64> = BTreeMap::new();
        for r in &roots {
            let path = vec!["roleclass".to_string(), r.name.clone()];
            *expected.entry(path.clone()).or_insert(0) +=
                r.self_duration().as_micros() as u64;
            for c in &r.children {
                let mut cp = path.clone();
                cp.push(c.name.clone());
                *expected.entry(cp).or_insert(0) += c.duration.as_micros() as u64;
            }
        }

        let text = collapsed_stacks(&roots, "roleclass");
        prop_assert_eq!(text.lines().count(), expected.len());
        let mut parsed: BTreeMap<Vec<String>, u64> = BTreeMap::new();
        for line in text.lines() {
            let Some((frames, value)) = parse_collapsed_line(line) else {
                return Err(TestCaseError::fail(format!("unparseable line {line:?}")));
            };
            prop_assert_eq!(&frames[0], "roleclass");
            prop_assert!(
                parsed.insert(frames, value).is_none(),
                "duplicate path in {:?}",
                line
            );
        }
        prop_assert_eq!(parsed, expected);
    }

    /// The profile table conserves time on the same arbitrary forests:
    /// summed self time equals summed root-inclusive time, and each
    /// row's min/max/total are coherent.
    #[test]
    fn profile_table_conserves_self_time(
        forest in prop::collection::vec(
            (
                "\\PC*",
                any::<u8>(),
                1u64..200,
                prop::collection::vec(("\\PC*", any::<u8>(), 1u64..50), 0..4),
            ),
            0..6,
        )
    ) {
        let roots: Vec<SpanNode> = forest
            .iter()
            .map(|(name, tag, ms, kids)| {
                let children = kids
                    .iter()
                    .map(|(n, t, m)| node(decorate(n, *t), *m, vec![]))
                    .collect();
                node(decorate(name, *tag), *ms, children)
            })
            .collect();
        let table = ProfileTable::from_spans(&roots);
        let self_sum: Duration = table.entries.iter().map(|e| e.self_time).sum();
        // Per root, self = max(0, dur − kids) and each child contributes
        // its full duration, so the forest's self-time total is
        // Σ max(dur, kids) — inclusive time plus the clamped overflow of
        // any root whose (arbitrary) children exceed it.
        let inclusive: Duration = roots.iter().map(|r| r.duration).sum();
        let children_overflow: Duration = roots
            .iter()
            .map(|r| {
                let kids: Duration = r.children.iter().map(|c| c.duration).sum();
                kids.saturating_sub(r.duration)
            })
            .sum();
        prop_assert_eq!(self_sum, inclusive + children_overflow);
        for e in &table.entries {
            prop_assert!(e.min <= e.max);
            prop_assert!(e.self_time <= e.total);
            prop_assert!(e.count >= 1);
        }
    }
}
