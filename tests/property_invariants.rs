//! Property-based tests of the pipeline's invariants, over randomly
//! generated networks and flow records.

use proptest::prelude::*;
use role_classification::flow::{
    netflow, pcap, textlog, ConnectionSets, FlowRecord, HostAddr, Proto,
};
use role_classification::roleclass::{
    try_classify, try_correlate, try_form_groups, Classification, Correlation, FormationResult,
    Grouping, Params,
};

// Local shims over the fallible entry points (the panicking wrappers
// are deprecated).
fn classify(cs: &ConnectionSets, p: &Params) -> Classification {
    try_classify(cs, p).unwrap()
}

fn form_groups(cs: &ConnectionSets, p: &Params) -> FormationResult {
    try_form_groups(cs, p).unwrap()
}

fn correlate(
    prev_cs: &ConnectionSets,
    prev_g: &Grouping,
    curr_cs: &ConnectionSets,
    curr_g: &Grouping,
    p: &Params,
) -> Correlation {
    try_correlate(prev_cs, prev_g, curr_cs, curr_g, p).unwrap()
}

/// Strategy: an arbitrary small connection-set structure.
fn arb_connsets(max_hosts: u32, max_edges: usize) -> impl Strategy<Value = ConnectionSets> {
    prop::collection::vec((0..max_hosts, 0..max_hosts), 0..max_edges).prop_map(|pairs| {
        let mut cs = ConnectionSets::new();
        for (a, b) in pairs {
            if a != b {
                cs.add_pair(HostAddr::v4(a), HostAddr::v4(b));
            }
        }
        cs
    })
}

/// Strategy: an arbitrary flow record with bounded fields.
fn arb_record() -> impl Strategy<Value = FlowRecord> {
    (
        0u32..5000,
        0u32..5000,
        0u8..4,
        any::<u16>(),
        any::<u16>(),
        1u32..10_000,
        1u64..1_000_000,
        0u64..1_000_000,
        0u64..1_000_000,
    )
        .prop_map(|(s, d, p, sp, dp, pk, by, t0, dt)| FlowRecord {
            src: HostAddr::v4(s),
            dst: HostAddr::v4(d),
            proto: match p {
                0 => Proto::Tcp,
                1 => Proto::Udp,
                2 => Proto::Icmp,
                _ => Proto::Other(89),
            },
            src_port: sp,
            dst_port: dp,
            packets: pk,
            bytes: by,
            start_ms: t0,
            end_ms: t0 + dt,
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The grouping is always a total partition of the host set.
    #[test]
    fn classification_is_a_partition(cs in arb_connsets(60, 120)) {
        let c = classify(&cs, &Params::default());
        prop_assert_eq!(c.grouping.host_count(), cs.host_count());
        let mut seen = std::collections::BTreeSet::new();
        for g in c.grouping.groups() {
            prop_assert!(!g.members.is_empty());
            for &m in &g.members {
                prop_assert!(seen.insert(m), "host in two groups");
                prop_assert!(cs.contains(m));
            }
        }
    }

    /// Formation alone is also a total partition, and every K_G is at
    /// most the host's own connection count bound (k cannot exceed the
    /// maximum degree).
    #[test]
    fn formation_is_total_and_k_bounded(cs in arb_connsets(40, 80)) {
        let r = form_groups(&cs, &Params::default());
        let total: usize = r.groups.iter().map(|g| g.members.len()).sum();
        prop_assert_eq!(total, cs.host_count());
        let kmax = cs.max_degree() as u32;
        for g in &r.groups {
            prop_assert!(g.k <= kmax);
        }
    }

    /// Merging never leaves the similarity scale: every merge event's
    /// similarity is in [0, 100] and at least S^lo.
    #[test]
    fn merge_similarities_within_thresholds(cs in arb_connsets(40, 80)) {
        let params = Params::default();
        let c = classify(&cs, &params);
        for ev in &c.merge_trace {
            prop_assert!(ev.similarity >= params.s_lo - 1e-9);
            prop_assert!(ev.similarity <= 100.0 + 1e-9);
        }
    }

    /// Correlating a snapshot against itself is the identity mapping.
    #[test]
    fn self_correlation_is_identity(cs in arb_connsets(40, 80)) {
        let params = Params::default();
        let c = classify(&cs, &params);
        let corr = correlate(&cs, &c.grouping, &cs, &c.grouping, &params);
        for (a, b) in &corr.id_map {
            prop_assert_eq!(a, b);
        }
        prop_assert!(corr.new_groups.is_empty());
        prop_assert!(corr.vanished_groups.is_empty());
    }

    /// NetFlow v5 serialization round-trips every record exactly.
    #[test]
    fn netflow_round_trip(records in prop::collection::vec(arb_record(), 0..100)) {
        // The writer clamps times below base; normalize inputs the same way.
        let base = 0;
        let bytes = netflow::write_stream(&records, base);
        let parsed = netflow::parse_stream(&bytes).expect("writer output parses");
        prop_assert_eq!(parsed.len(), records.len());
        for (orig, got) in records.iter().zip(&parsed) {
            prop_assert_eq!(got.src, orig.src);
            prop_assert_eq!(got.dst, orig.dst);
            prop_assert_eq!(got.proto, orig.proto);
            prop_assert_eq!(got.src_port, orig.src_port);
            prop_assert_eq!(got.dst_port, orig.dst_port);
            prop_assert_eq!(got.packets, orig.packets);
            prop_assert_eq!(got.start_ms, orig.start_ms);
            prop_assert_eq!(got.end_ms, orig.end_ms);
        }
    }

    /// pcap serialization round-trips TCP/UDP endpoint tuples.
    #[test]
    fn pcap_round_trip(records in prop::collection::vec(arb_record(), 0..100)) {
        let bytes = pcap::write_file(&records);
        let parsed = pcap::parse_file(&bytes).expect("writer output parses");
        let transportable: Vec<&FlowRecord> = records
            .iter()
            .filter(|r| matches!(r.proto, Proto::Tcp | Proto::Udp))
            .collect();
        prop_assert_eq!(parsed.records.len(), transportable.len());
        prop_assert_eq!(parsed.skipped, records.len() - transportable.len());
        for (orig, got) in transportable.iter().zip(&parsed.records) {
            prop_assert_eq!(got.src, orig.src);
            prop_assert_eq!(got.dst, orig.dst);
            prop_assert_eq!(got.src_port, orig.src_port);
            prop_assert_eq!(got.dst_port, orig.dst_port);
        }
    }

    /// The text log round-trips every record exactly.
    #[test]
    fn textlog_round_trip(records in prop::collection::vec(arb_record(), 0..50)) {
        let text = textlog::render(&records);
        let parsed = textlog::parse(&text).expect("renderer output parses");
        prop_assert_eq!(parsed, records);
    }

    /// Building connection sets is direction- and order-insensitive.
    #[test]
    fn connset_building_is_order_insensitive(
        records in prop::collection::vec(arb_record(), 0..60),
        seed in any::<u64>(),
    ) {
        use role_classification::flow::ConnsetBuilder;
        let mut b1 = ConnsetBuilder::new();
        b1.add_records(records.iter());
        let cs1 = b1.build();

        // Shuffle deterministically and reverse some directions.
        let mut shuffled = records.clone();
        let mut state = seed;
        for i in (1..shuffled.len()).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            shuffled.swap(i, j);
        }
        let flipped: Vec<FlowRecord> = shuffled
            .iter()
            .map(|r| if r.start_ms % 2 == 0 { r.reversed() } else { *r })
            .collect();
        let mut b2 = ConnsetBuilder::new();
        b2.add_records(flipped.iter());
        let cs2 = b2.build();
        prop_assert_eq!(cs1.edges(), cs2.edges());
    }
}
