//! Properties of the stability observatory, plus the role-drift
//! end-to-end scenario.
//!
//! The stability scores (persistence, backbone, churn) are defined over
//! the *partition structure* of successive groupings: they must be
//! invariant under relabeling the host addresses and under the engine's
//! worker count, and the `RoleChurn` alert must fire exactly once per
//! collapse episode — not once per window the backbone stays low.

use proptest::prelude::*;
use role_classification::aggregator::{
    Aggregator, AggregatorConfig, AlertKind, ReplayProbe, SupervisorConfig,
};
use role_classification::flow::{FlowRecord, HostAddr};
use role_classification::roleclass::{
    EngineConfig, Group, GroupId, Grouping, Params, StabilityTracker,
};
use role_classification::synthnet::{churn, scenarios, trace};
use std::collections::BTreeMap;

/// Builds a grouping from a dense assignment `host index -> group id`.
fn grouping_from(assign: &[u32], addr: &dyn Fn(usize) -> HostAddr) -> Grouping {
    let mut members: BTreeMap<u32, Vec<HostAddr>> = BTreeMap::new();
    for (i, &g) in assign.iter().enumerate() {
        members.entry(g).or_default().push(addr(i));
    }
    Grouping::new(
        members
            .into_iter()
            .map(|(g, m)| Group {
                id: GroupId(g),
                k: 1,
                members: m,
            })
            .collect(),
    )
}

/// A deterministic permutation of `0..n` from a seed (Fisher–Yates over
/// an LCG stream).
fn permutation(n: usize, seed: u64) -> Vec<usize> {
    let mut p: Vec<usize> = (0..n).collect();
    let mut state = seed;
    for i in (1..n).rev() {
        state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
        let j = (state >> 33) as usize % (i + 1);
        p.swap(i, j);
    }
    p
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Persistence, backbone, and churn depend only on the partition
    /// structure: relabeling every host address leaves every
    /// [`WindowStability`] row and every per-host churn summary (under
    /// the relabeling) unchanged.
    #[test]
    fn stability_scores_invariant_under_host_relabeling(
        seq in prop::collection::vec(prop::collection::vec(0u32..5, 12), 1..6),
        perm_seed in any::<u64>(),
    ) {
        let n = seq[0].len();
        let p = permutation(n, perm_seed);
        let mut plain = StabilityTracker::new(4);
        let mut relabeled = StabilityTracker::new(4);
        for assign in &seq {
            let ga = grouping_from(assign, &|i| HostAddr::v4(100 + i as u32));
            let gb = grouping_from(assign, &|i| HostAddr::v4(5000 + p[i] as u32));
            let ra = plain.observe(&ga);
            let rb = relabeled.observe(&gb);
            // WindowStability carries no host addresses, so the rows are
            // equal outright, per-group scores included.
            prop_assert_eq!(ra, rb);
        }
        // Per-host churn follows the relabeling exactly.
        for (i, &pi) in p.iter().enumerate() {
            let a = plain.host_churn(HostAddr::v4(100 + i as u32));
            let b = relabeled.host_churn(HostAddr::v4(5000 + pi as u32));
            match (a, b) {
                (Some(a), Some(b)) => {
                    prop_assert_eq!(a.flips, b.flips);
                    prop_assert_eq!(a.windows, b.windows);
                    prop_assert_eq!(a.group, b.group);
                }
                (None, None) => {}
                (a, b) => prop_assert!(false, "churn presence diverged: {a:?} vs {b:?}"),
            }
        }
    }
}

fn drift_config(workers: usize) -> AggregatorConfig {
    AggregatorConfig {
        window_ms: 1000,
        origin_ms: 0,
        engine: EngineConfig::new(Params::default().with_s_lo(90.0).with_s_hi(95.0))
            .with_workers(workers),
        min_flows: 1,
        supervisor: SupervisorConfig::immediate(),
        ..AggregatorConfig::default()
    }
}

/// One day of records per window, offset into that window's time range.
fn windowed_records(nets: &[role_classification::synthnet::SyntheticNetwork]) -> Vec<FlowRecord> {
    nets.iter()
        .enumerate()
        .flat_map(|(day, net)| {
            let mut r = trace::expand(
                &net.connsets,
                trace::TraceOptions::default(),
                day as u64 + 3,
            );
            for f in &mut r {
                f.start_ms = day as u64 * 1000 + f.start_ms % 1000;
            }
            r
        })
        .collect()
}

/// The drift scenario: a stable network for three windows, then the
/// majority of the sales pod migrates to engineering behavior, then the
/// drifted network stays put. Every window is a valid classification;
/// only the sales group's membership backbone collapses.
fn drift_windows() -> Vec<role_classification::synthnet::SyntheticNetwork> {
    let stable = scenarios::figure1(8, 8);
    let mut drifted = scenarios::figure1(8, 8);
    let movers: Vec<HostAddr> = drifted.role_hosts("sales")[..5].to_vec();
    let template = drifted.role_hosts("eng")[0];
    for h in movers {
        churn::remove_host(&mut drifted, h);
        churn::add_host_like(&mut drifted, template, h);
    }
    vec![
        stable.clone(),
        stable.clone(),
        stable,
        drifted.clone(),
        drifted.clone(),
        drifted,
    ]
}

/// The worker count is a pure throughput knob for the stability
/// observatory too: rows, churn tables, and queued alerts are
/// bit-identical at any parallelism.
#[test]
fn stability_rows_invariant_under_worker_count() {
    let records = windowed_records(&drift_windows());
    let mut outcomes = Vec::new();
    for workers in [1usize, 4] {
        let mut agg = Aggregator::new(drift_config(workers));
        agg.attach(Box::new(ReplayProbe::new("p0", records.clone())));
        agg.drain();
        let alerts = agg.take_alerts();
        outcomes.push((agg.stability_history().to_vec(), agg.churn_table(), alerts));
    }
    assert_eq!(outcomes[0].0, outcomes[1].0, "stability rows diverged");
    assert_eq!(outcomes[0].1, outcomes[1].1, "churn tables diverged");
    assert_eq!(outcomes[0].2, outcomes[1].2, "alerts diverged");
}

/// The end-to-end drift scenario: the backbone collapse raises
/// [`AlertKind::RoleChurn`] exactly once, in the window the majority of
/// the sales pod left — not again while the group stays small, and not
/// for any healthy group.
#[test]
fn role_drift_scenario_trips_role_churn_exactly_once() {
    let windows = drift_windows();
    let sales_survivor = windows[0].role_hosts("sales")[7];
    let mut agg = Aggregator::new(drift_config(0));
    agg.attach(Box::new(ReplayProbe::new("p0", windowed_records(&windows))));
    let cycles = agg.drain();
    assert_eq!(cycles, 6);

    let churn_alerts: Vec<_> = agg
        .take_alerts()
        .into_iter()
        .filter(|a| matches!(a.kind, AlertKind::RoleChurn { .. }))
        .collect();
    assert_eq!(
        churn_alerts.len(),
        1,
        "expected exactly one RoleChurn alert, got {churn_alerts:#?}"
    );
    let AlertKind::RoleChurn {
        window,
        group,
        persistence,
        retained,
        prev_members,
        backbone_permille,
        threshold_permille,
    } = churn_alerts[0].kind
    else {
        unreachable!("filtered to RoleChurn above");
    };
    // The collapse happened in the fourth window (start 3000), on the
    // group the surviving sales hosts still publish under.
    assert_eq!(window.start_ms, 3000);
    let history = agg.history();
    let sales_group = history.read()[3]
        .grouping
        .group_of(sales_survivor)
        .expect("surviving sales host still grouped");
    assert_eq!(group, sales_group);
    assert!(persistence >= 2, "only persistent groups may alert");
    assert_eq!(prev_members, 8);
    assert_eq!(retained, 3);
    assert_eq!(backbone_permille, 375);
    assert_eq!(threshold_permille, 500);

    // The stability rows tell the same story: full backbone before the
    // drift, the collapse at window 3, recovery after.
    let rows = agg.stability_history();
    assert_eq!(rows.len(), 6);
    assert_eq!(rows[2].backbone_min, 1.0);
    assert!(rows[3].backbone_min < 0.5);
    let sales_row = rows[3]
        .groups
        .iter()
        .find(|g| g.group == sales_group)
        .expect("sales group scored in the drift window");
    assert_eq!(sales_row.backbone, 0.375);
    // The migrated hosts show up as churned in the drift window only.
    assert_eq!(rows[2].churned_hosts, 0);
    assert!(rows[3].churned_hosts >= 5);
    assert_eq!(rows[5].churned_hosts, 0);
}
