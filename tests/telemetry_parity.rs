//! Attaching a telemetry recorder must be purely observational: the
//! engine's window outcomes — and the aggregator's stability rows —
//! are bit-identical with and without one.

use role_classification::aggregator::{
    Aggregator, AggregatorConfig, ReplayProbe, SupervisorConfig,
};
use role_classification::roleclass::{
    Engine, EngineConfig, Params, ENGINE_EVENT_NAMES, STABILITY_METRIC_NAMES,
};
use role_classification::synthnet::{scenarios, trace};
use role_classification::telemetry::Recorder;
use std::sync::Arc;

#[test]
fn run_window_is_bit_identical_with_and_without_recorder() {
    let params = Params::default().with_s_lo(90.0).with_s_hi(95.0);
    let mut plain = Engine::new(params).unwrap();
    let mut traced = Engine::new(params)
        .unwrap()
        .with_recorder(Arc::new(Recorder::new()));

    // Two windows with different seeds: the second correlates against
    // the first, so both the classify and correlate paths are compared.
    let net = scenarios::figure1(4, 5);
    for seed in [3u64, 4] {
        let records = trace::expand(&net.connsets, trace::TraceOptions::default(), seed);
        let mut builder = role_classification::flow::ConnsetBuilder::new();
        builder.add_records(records.iter());
        let cs = builder.build();

        let a = plain.run_window(&cs);
        let b = traced.run_window(&cs);
        assert_eq!(a.grouping, b.grouping);
        assert_eq!(a.classification.grouping, b.classification.grouping);
        assert_eq!(a.correlation.is_some(), b.correlation.is_some());
        // Correlation has no PartialEq; its serialized form is stable.
        assert_eq!(
            serde_json::to_string(&a.correlation).unwrap(),
            serde_json::to_string(&b.correlation).unwrap()
        );
    }

    // And the recorder actually observed the work it did not perturb.
    let rec = traced.recorder().unwrap();
    assert_eq!(
        rec.registry()
            .counter("roleclass_engine_windows_total")
            .get(),
        2
    );
    assert_eq!(rec.spans().len(), 2);

    // Decision provenance rides the same recorder: the journal is
    // populated, every event name is declared, and the sequence is
    // dense — yet none of it changed the outcomes compared above.
    let events = rec.events().snapshot();
    assert!(!events.is_empty(), "provenance events were recorded");
    for (i, ev) in events.iter().enumerate() {
        assert_eq!(ev.layer, "engine");
        assert!(
            ENGINE_EVENT_NAMES.contains(&ev.name),
            "{} is not a declared engine event",
            ev.name
        );
        assert_eq!(ev.seq, i as u64);
    }
    // Both windows left formation traces; the second window correlated.
    assert!(events
        .iter()
        .any(|e| e.name == "roleclass_engine_host_grouped"));
    assert!(events
        .iter()
        .any(|e| e.name == "roleclass_engine_id_carried"));
}

/// Profiler-attached vs detached classification outcomes, pinned
/// bit-identical across worker counts. The profiling subsystem (span
/// self-time, allocation snapshots, unit-cost series) rides the same
/// recorder as plain telemetry; this pins that none of it perturbs the
/// grouping at 1, 2, or 8 kernel/merge workers.
#[test]
fn profiler_attached_outcomes_identical_across_worker_counts() {
    let params = Params::default().with_s_lo(90.0).with_s_hi(95.0);
    let net = scenarios::figure1(6, 7);
    let windows: Vec<_> = (0..3u64)
        .map(|seed| {
            let records = trace::expand(&net.connsets, trace::TraceOptions::default(), 11 + seed);
            let mut builder = role_classification::flow::ConnsetBuilder::new();
            builder.add_records(records.iter());
            builder.build()
        })
        .collect();

    let mut reference: Option<Vec<String>> = None;
    for workers in [1usize, 2, 8] {
        let config = EngineConfig::new(params).with_workers(workers);
        let mut plain = Engine::from_config(config.clone()).unwrap();
        let rec = Arc::new(Recorder::new());
        let mut profiled = Engine::from_config(config)
            .unwrap()
            .with_recorder(Arc::clone(&rec));

        let mut outcomes = Vec::new();
        for cs in &windows {
            let a = plain.run_window(cs);
            let b = profiled.run_window(cs);
            assert_eq!(a.grouping, b.grouping, "workers={workers}");
            assert_eq!(
                serde_json::to_string(&a.correlation).unwrap(),
                serde_json::to_string(&b.correlation).unwrap(),
                "workers={workers}"
            );
            outcomes.push(format!("{:?}|{:?}", a.grouping, a.correlation.is_some()));
        }
        // ... and the outcomes agree across worker counts too, so the
        // profile rows below describe one single canonical run.
        match &reference {
            None => reference = Some(outcomes),
            Some(r) => assert_eq!(r, &outcomes, "workers={workers}"),
        }

        // The profiled run actually profiled: the aggregated table has
        // the full window span set with coherent self times.
        let profile = rec.profile();
        for stage in ["engine.run_window", "engine.classify", "engine.correlate"] {
            let e = profile
                .get(stage)
                .unwrap_or_else(|| panic!("{stage} missing"));
            assert_eq!(
                e.count as usize,
                if stage == "engine.correlate" { 2 } else { 3 }
            );
            assert!(e.self_time <= e.total);
            assert!(e.min <= e.max);
        }
        // Collapsed export parses back and its values (self micros)
        // cover every line.
        let collapsed = rec.collapsed_spans();
        assert!(!collapsed.is_empty());
        for line in collapsed.lines() {
            let (frames, _) =
                role_classification::telemetry::parse_collapsed_line(line).expect(line);
            assert_eq!(frames[0], "roleclass");
        }
    }
}

#[test]
fn stability_rows_are_bit_identical_with_and_without_recorder() {
    let config = || AggregatorConfig {
        window_ms: 1000,
        origin_ms: 0,
        engine: EngineConfig::new(Params::default().with_s_lo(90.0).with_s_hi(95.0)),
        min_flows: 1,
        supervisor: SupervisorConfig::immediate(),
        ..AggregatorConfig::default()
    };
    let net = scenarios::figure1(4, 5);
    let probe = || {
        let records: Vec<_> = (0..3u64)
            .flat_map(|day| {
                let mut r = trace::expand(&net.connsets, trace::TraceOptions::default(), day + 7);
                for f in &mut r {
                    f.start_ms = day * 1000 + f.start_ms % 1000;
                }
                r
            })
            .collect();
        ReplayProbe::new("p0", records)
    };

    let mut plain = Aggregator::new(config());
    plain.attach(Box::new(probe()));
    plain.drain();

    let rec = Arc::new(Recorder::new());
    let mut traced = Aggregator::new(config()).with_recorder(Arc::clone(&rec));
    traced.attach(Box::new(probe()));
    traced.drain();

    // The groupings, the stability rows, the churn tables, and the
    // timeseries frames (modulo wall-clock timestamps) all match.
    {
        let a = plain.history();
        let b = traced.history();
        let (a, b) = (a.read(), b.read());
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.grouping, y.grouping);
        }
    }
    assert_eq!(plain.stability_history(), traced.stability_history());
    assert_eq!(plain.churn_table(), traced.churn_table());
    // Frames match modulo the `roleclass_profile_` series: unit costs
    // are derived from recorder stage timings, so they exist only on
    // the attached side — everything else must be value-identical.
    let (fa, fb) = (
        plain.timeseries().snapshot(),
        traced.timeseries().snapshot(),
    );
    assert_eq!(fa.len(), fb.len());
    for (x, y) in fa.iter().zip(fb.iter()) {
        assert_eq!(x.window, y.window);
        let y_profile: Vec<&str> = y
            .values
            .iter()
            .map(|(n, _)| *n)
            .filter(|n| n.starts_with("roleclass_profile_"))
            .collect();
        assert_eq!(
            y_profile,
            role_classification::telemetry::PROFILE_METRIC_NAMES,
            "attached frames carry every declared profile series"
        );
        let y_stripped: Vec<(&'static str, f64)> = y
            .values
            .iter()
            .filter(|(n, _)| !n.starts_with("roleclass_profile_"))
            .copied()
            .collect();
        assert_eq!(x.values, y_stripped);
        assert!(
            !x.values
                .iter()
                .any(|(n, _)| n.starts_with("roleclass_profile_")),
            "detached frames never carry profile series"
        );
    }

    // The attached run registered its stability metrics, all declared.
    let reg = rec.registry();
    assert_eq!(reg.counter("roleclass_stability_windows_total").get(), 3);
    for line in reg.prometheus_text().lines() {
        if let Some(name) = line.split([' ', '{']).next() {
            if name.starts_with("roleclass_stability_") {
                let base = name
                    .trim_end_matches("_bucket")
                    .trim_end_matches("_sum")
                    .trim_end_matches("_count");
                assert!(
                    STABILITY_METRIC_NAMES.contains(&base),
                    "{base} not declared"
                );
            }
        }
    }
}
