//! Attaching a telemetry recorder must be purely observational: the
//! engine's window outcomes are bit-identical with and without one.

use role_classification::roleclass::{Engine, Params, ENGINE_EVENT_NAMES};
use role_classification::synthnet::{scenarios, trace};
use role_classification::telemetry::Recorder;
use std::sync::Arc;

#[test]
fn run_window_is_bit_identical_with_and_without_recorder() {
    let params = Params::default().with_s_lo(90.0).with_s_hi(95.0);
    let mut plain = Engine::new(params).unwrap();
    let mut traced = Engine::new(params)
        .unwrap()
        .with_recorder(Arc::new(Recorder::new()));

    // Two windows with different seeds: the second correlates against
    // the first, so both the classify and correlate paths are compared.
    let net = scenarios::figure1(4, 5);
    for seed in [3u64, 4] {
        let records = trace::expand(&net.connsets, trace::TraceOptions::default(), seed);
        let mut builder = role_classification::flow::ConnsetBuilder::new();
        builder.add_records(records.iter());
        let cs = builder.build();

        let a = plain.run_window(&cs);
        let b = traced.run_window(&cs);
        assert_eq!(a.grouping, b.grouping);
        assert_eq!(a.classification.grouping, b.classification.grouping);
        assert_eq!(a.correlation.is_some(), b.correlation.is_some());
        // Correlation has no PartialEq; its serialized form is stable.
        assert_eq!(
            serde_json::to_string(&a.correlation).unwrap(),
            serde_json::to_string(&b.correlation).unwrap()
        );
    }

    // And the recorder actually observed the work it did not perturb.
    let rec = traced.recorder().unwrap();
    assert_eq!(
        rec.registry()
            .counter("roleclass_engine_windows_total")
            .get(),
        2
    );
    assert_eq!(rec.spans().len(), 2);

    // Decision provenance rides the same recorder: the journal is
    // populated, every event name is declared, and the sequence is
    // dense — yet none of it changed the outcomes compared above.
    let events = rec.events().snapshot();
    assert!(!events.is_empty(), "provenance events were recorded");
    for (i, ev) in events.iter().enumerate() {
        assert_eq!(ev.layer, "engine");
        assert!(
            ENGINE_EVENT_NAMES.contains(&ev.name),
            "{} is not a declared engine event",
            ev.name
        );
        assert_eq!(ev.seq, i as u64);
    }
    // Both windows left formation traces; the second window correlated.
    assert!(events
        .iter()
        .any(|e| e.name == "roleclass_engine_host_grouped"));
    assert!(events
        .iter()
        .any(|e| e.name == "roleclass_engine_id_carried"));
}
