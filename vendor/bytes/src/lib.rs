//! Offline stand-in for the `bytes` crate (1.x API subset).
//!
//! [`Bytes`] is a cursor over an owned buffer, [`BytesMut`] an
//! append-only builder; [`Buf`] / [`BufMut`] carry the big-endian
//! integer accessors the flow parsers use. Reading past the end panics,
//! matching the real crate — callers bounds-check with
//! [`Buf::remaining`] first.

use std::ops::Deref;

/// Read side: sequential big-endian extraction.
pub trait Buf {
    /// Bytes left to read.
    fn remaining(&self) -> usize;
    /// Takes `n` bytes off the front; panics if fewer remain.
    fn take(&mut self, n: usize) -> &[u8];

    /// Reads one byte.
    fn get_u8(&mut self) -> u8 {
        self.take(1)[0]
    }

    /// Reads a big-endian `u16`.
    fn get_u16(&mut self) -> u16 {
        let b = self.take(2);
        u16::from_be_bytes([b[0], b[1]])
    }

    /// Reads a big-endian `u32`.
    fn get_u32(&mut self) -> u32 {
        let b = self.take(4);
        u32::from_be_bytes([b[0], b[1], b[2], b[3]])
    }

    /// Reads a big-endian `u64`.
    fn get_u64(&mut self) -> u64 {
        let b = self.take(8);
        let mut arr = [0u8; 8];
        arr.copy_from_slice(b);
        u64::from_be_bytes(arr)
    }
}

/// Write side: sequential big-endian append.
pub trait BufMut {
    /// Appends raw bytes.
    fn put_slice(&mut self, src: &[u8]);

    /// Appends one byte.
    fn put_u8(&mut self, v: u8) {
        self.put_slice(&[v]);
    }

    /// Appends a big-endian `u16`.
    fn put_u16(&mut self, v: u16) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u32`.
    fn put_u32(&mut self, v: u32) {
        self.put_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian `u64`.
    fn put_u64(&mut self, v: u64) {
        self.put_slice(&v.to_be_bytes());
    }
}

/// Immutable byte buffer with a read cursor.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Bytes {
    data: Vec<u8>,
    pos: usize,
}

impl Bytes {
    /// Copies a slice into a fresh buffer.
    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes {
            data: data.to_vec(),
            pos: 0,
        }
    }
}

impl Buf for Bytes {
    fn remaining(&self) -> usize {
        self.data.len() - self.pos
    }

    fn take(&mut self, n: usize) -> &[u8] {
        assert!(self.remaining() >= n, "buffer underflow");
        let start = self.pos;
        self.pos += n;
        &self.data[start..self.pos]
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data[self.pos..]
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(data: Vec<u8>) -> Self {
        Bytes { data, pos: 0 }
    }
}

/// Growable byte buffer.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct BytesMut {
    data: Vec<u8>,
}

impl BytesMut {
    /// Empty buffer.
    pub fn new() -> Self {
        BytesMut::default()
    }

    /// Buffer pre-sized for `cap` bytes.
    pub fn with_capacity(cap: usize) -> Self {
        BytesMut {
            data: Vec::with_capacity(cap),
        }
    }

    /// Freezes into an immutable [`Bytes`].
    pub fn freeze(self) -> Bytes {
        Bytes {
            data: self.data,
            pos: 0,
        }
    }
}

impl BufMut for BytesMut {
    fn put_slice(&mut self, src: &[u8]) {
        self.data.extend_from_slice(src);
    }
}

impl Deref for BytesMut {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_big_endian() {
        let mut w = BytesMut::new();
        w.put_u8(0xAB);
        w.put_u16(0x1234);
        w.put_u32(0xDEAD_BEEF);
        w.put_slice(b"xy");
        assert_eq!(w.len(), 9);

        let mut r = Bytes::copy_from_slice(&w);
        assert_eq!(r.remaining(), 9);
        assert_eq!(r.get_u8(), 0xAB);
        assert_eq!(r.get_u16(), 0x1234);
        assert_eq!(r.get_u32(), 0xDEAD_BEEF);
        assert_eq!(r.take(2), b"xy");
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn underflow_panics() {
        let mut r = Bytes::copy_from_slice(&[1]);
        let _ = r.get_u16();
    }
}
