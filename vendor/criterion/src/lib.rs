//! Offline stand-in for `criterion` (0.5 API subset).
//!
//! Runs each benchmark as a short warmup followed by a time-boxed
//! measurement loop and prints the mean iteration time. No statistics,
//! plots, or saved baselines — just enough to keep `cargo bench`
//! meaningful and the bench targets compiling.

use std::fmt::Display;
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Label for a parameterized benchmark.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// Id rendered from a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }

    /// Id with both a function name and a parameter.
    pub fn new<P: Display>(function_name: &str, parameter: P) -> Self {
        BenchmarkId {
            text: format!("{function_name}/{parameter}"),
        }
    }
}

/// How `iter_batched` amortizes setup cost; the stub runs one setup per
/// measured batch regardless of the variant.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum BatchSize {
    /// Small per-iteration state.
    SmallInput,
    /// Large per-iteration state.
    LargeInput,
    /// Each batch is exactly one iteration.
    PerIteration,
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    total: Duration,
    iters: u64,
}

impl Bencher {
    /// Measures `routine` repeatedly until the time box fills. Always
    /// completes at least one timed iteration, so a routine slower than
    /// the box still reports its cost instead of vanishing.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let deadline = Instant::now() + MEASURE_BOX;
        // Warmup: one untimed call so lazy initialization and cache
        // effects land outside the measurement.
        black_box(routine());
        loop {
            let start = Instant::now();
            black_box(routine());
            self.total += start.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }

    /// Measures `routine` on fresh input from `setup`, excluding setup
    /// time from the measurement. Like [`iter`][Self::iter], always
    /// completes at least one timed iteration.
    pub fn iter_batched<I, O, S, R>(&mut self, mut setup: S, mut routine: R, _size: BatchSize)
    where
        S: FnMut() -> I,
        R: FnMut(I) -> O,
    {
        let deadline = Instant::now() + MEASURE_BOX;
        black_box(routine(setup()));
        loop {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.total += start.elapsed();
            self.iters += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
    }
}

const MEASURE_BOX: Duration = Duration::from_millis(300);

fn report(name: &str, bencher: &Bencher) {
    if bencher.iters == 0 {
        println!("{name}: no completed iterations within the time box");
        return;
    }
    let mean = bencher.total / bencher.iters as u32;
    println!("{name}: mean {mean:?} over {} iterations", bencher.iters);
}

/// Benchmark registry/driver (mirrors `criterion::Criterion`).
#[derive(Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Runs one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: &str, mut f: F) -> &mut Self {
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);
        report(name, &bencher);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _parent: self,
            name: name.to_string(),
        }
    }
}

/// A group of related benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for API compatibility; the stub's time box ignores it.
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Runs one benchmark over a borrowed input.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher {
            total: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher, input);
        report(&format!("{}/{}", self.name, id.text), &bencher);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default();
        let mut calls = 0u32;
        c.bench_function("counting", |b| {
            b.iter(|| {
                calls += 1;
            })
        });
        assert!(calls > 0);
    }

    #[test]
    fn groups_and_batched_iters_run() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(10);
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u32, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();

        let mut c = Criterion::default();
        c.bench_function("batched", |b| {
            b.iter_batched(|| vec![1u8, 2, 3], |v| v.len(), BatchSize::SmallInput)
        });
    }
}
