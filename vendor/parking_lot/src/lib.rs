//! Offline stand-in for `parking_lot` (0.12 API subset).
//!
//! Wraps `std::sync` primitives with parking_lot's signature: `lock`,
//! `read`, and `write` return guards directly, with no poisoning layer —
//! a lock held by a panicking thread is simply re-acquirable, which is
//! parking_lot's actual semantics.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

/// Reader-writer lock without lock poisoning.
#[derive(Debug, Default)]
pub struct RwLock<T> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    /// Acquires shared access, blocking until available.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        match self.inner.read() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Acquires exclusive access, blocking until available.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        match self.inner.write() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

/// Mutual-exclusion lock without lock poisoning.
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    /// Wraps a value.
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        match self.inner.lock() {
            Ok(g) => g,
            Err(poisoned) => poisoned.into_inner(),
        }
    }

    /// Consumes the lock, returning the value.
    pub fn into_inner(self) -> T {
        match self.inner.into_inner() {
            Ok(v) => v,
            Err(poisoned) => poisoned.into_inner(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rwlock_read_write() {
        let lock = RwLock::new(1u32);
        assert_eq!(*lock.read(), 1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn mutex_lock() {
        let m = Mutex::new(vec![1]);
        m.lock().push(2);
        assert_eq!(m.into_inner(), vec![1, 2]);
    }
}
