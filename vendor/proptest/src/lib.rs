//! Offline stand-in for `proptest` (1.x API subset).
//!
//! Supports the shape this workspace's property tests use: the
//! `proptest!` macro with an optional `#![proptest_config(..)]` inner
//! attribute, `name in strategy` bindings (including tuple patterns),
//! `prop_assert!` / `prop_assert_eq!`, and the range / `any` / tuple /
//! `prop_map` / `prop::collection::{vec, btree_set}` / string
//! strategies. Cases are generated from a generator seeded by the test
//! name, so every run of a given test sees the same case sequence.
//! Failing inputs are reported by `Debug`-printing the bound values;
//! there is no shrinking.

pub mod strategy {
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::collections::BTreeSet;
    use std::marker::PhantomData;
    use std::ops::{Range, RangeInclusive};

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn sample(&self, rng: &mut TestRng) -> Self::Value;

        /// Post-processes generated values with `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Output of [`Strategy::prop_map`].
    #[derive(Clone, Debug)]
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Always yields a clone of the given value.
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.inner.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.inner.gen_range(self.clone())
                }
            }
        )*};
    }
    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Strategy for Range<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            rng.inner.gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;

        fn sample(&self, rng: &mut TestRng) -> f64 {
            // Closed at both ends; sampling the half-open range is an
            // acceptable approximation except for degenerate ranges.
            if self.start() == self.end() {
                return *self.start();
            }
            self.start() + rng.inner.gen::<f64>() * (self.end() - self.start())
        }
    }

    /// Types with a default "any value" strategy (mirrors
    /// `proptest::arbitrary::Arbitrary` for the primitives used here).
    pub trait Arbitrary: Sized {
        /// Draws an unconstrained value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! arb_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.inner.gen::<u64>() as $t
                }
            }
        )*};
    }
    arb_uint!(u8, u16, u32, u64, usize);

    macro_rules! arb_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.inner.gen::<u64>() as $t
                }
            }
        )*};
    }
    arb_int!(i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.inner.gen::<bool>()
        }
    }

    impl Arbitrary for f64 {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.inner.gen::<f64>()
        }
    }

    /// Strategy returned by [`any`](crate::arbitrary::any).
    pub struct Any<T>(pub(crate) PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// String strategy from a regex-like pattern.
    ///
    /// The pattern is not interpreted: samples are strings of 0–63
    /// non-control characters (ASCII with occasional multibyte code
    /// points), which satisfies the `"\\PC*"` pattern this workspace
    /// uses. Tests needing a more precise character class should build
    /// strings from explicit strategies instead.
    impl Strategy for &'static str {
        type Value = String;

        fn sample(&self, rng: &mut TestRng) -> String {
            let len = rng.inner.gen_range(0usize..64);
            (0..len)
                .map(|_| match rng.inner.gen_range(0u32..20) {
                    0 => 'é',
                    1 => '€',
                    2 => '😀',
                    _ => char::from_u32(rng.inner.gen_range(0x20u32..0x7F)).unwrap_or('x'),
                })
                .collect()
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
    tuple_strategy!(A, B, C, D, E, F, G);
    tuple_strategy!(A, B, C, D, E, F, G, H);
    tuple_strategy!(A, B, C, D, E, F, G, H, I);
    tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

    /// Collection sizes: a fixed length or a range of lengths.
    pub trait SizeRange {
        /// Draws a concrete length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.inner.gen_range(self.clone())
        }
    }

    impl SizeRange for RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.inner.gen_range(self.clone())
        }
    }

    /// Strategy for `Vec<S::Value>` with a sampled length.
    pub struct VecStrategy<S, L> {
        pub(crate) element: S,
        pub(crate) len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Strategy for `BTreeSet<S::Value>`; the length bound applies to
    /// the number of *attempted* insertions, so duplicates may make the
    /// set smaller (matching proptest's possible-undershoot behavior).
    pub struct BTreeSetStrategy<S, L> {
        pub(crate) element: S,
        pub(crate) len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for BTreeSetStrategy<S, L>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Self::Value {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use crate::strategy::{Any, Arbitrary};
    use std::marker::PhantomData;

    /// The default strategy for `T`: unconstrained values.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

/// Strategy constructors under their `proptest` paths (`prop::...`).
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::strategy::{BTreeSetStrategy, SizeRange, Strategy, VecStrategy};

        /// `Vec` of `element` values with a length drawn from `len`.
        pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
            VecStrategy { element, len }
        }

        /// `BTreeSet` built from up to `len` sampled elements.
        pub fn btree_set<S: Strategy, L: SizeRange>(element: S, len: L) -> BTreeSetStrategy<S, L>
        where
            S::Value: Ord,
        {
            BTreeSetStrategy { element, len }
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use std::fmt;

    /// Per-test deterministic generator.
    pub struct TestRng {
        pub(crate) inner: StdRng,
    }

    impl TestRng {
        /// Seeds from a test name so each test has a stable but distinct
        /// case sequence.
        pub fn deterministic(name: &str) -> Self {
            let mut seed: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                seed ^= b as u64;
                seed = seed.wrapping_mul(0x100_0000_01b3);
            }
            TestRng {
                inner: StdRng::seed_from_u64(seed),
            }
        }
    }

    /// A failed property observation.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(String);

    impl TestCaseError {
        /// Builds a failure with the given explanation.
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError(msg.into())
        }
    }

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "{}", self.0)
        }
    }

    impl std::error::Error for TestCaseError {}

    /// Runner configuration (mirrors `proptest::test_runner::Config`).
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of random cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }
}

/// Everything a property test module needs.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Defines property tests: each `#[test] fn name(bindings) { body }`
/// entry becomes a test running `cases` sampled inputs through `body`.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! {
            cfg = (<$crate::test_runner::Config as ::std::default::Default>::default());
            $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = ($cfg:expr);) => {};
    (cfg = ($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($pat:pat in $strat:expr),* $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(), "::", stringify!($name)
            ));
            for case in 0..config.cases {
                $(
                    let $pat = $crate::strategy::Strategy::sample(&($strat), &mut rng);
                )*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        ::std::result::Result::Ok(())
                    })();
                if let ::std::result::Result::Err(e) = outcome {
                    panic!(
                        "property '{}' failed at case {}/{}: {}",
                        stringify!($name),
                        case + 1,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::__proptest_impl! { cfg = ($cfg); $($rest)* }
    };
}

/// Asserts a condition inside a property body, failing the case (with
/// the bound inputs reported by the runner) instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
            stringify!($left),
            stringify!($right),
            l,
            r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l == *r,
            "{}\n  left: {:?}\n right: {:?}",
            format!($($fmt)+),
            l,
            r
        );
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{}` != `{}`\n  both: {:?}",
            stringify!($left),
            stringify!($right),
            l
        );
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_hold(x in 3u32..10, y in 0u8..=4) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
        }

        /// Tuple patterns and prop_map compose.
        #[test]
        fn mapped_tuples((a, b) in (0u64..50, 0u64..50).prop_map(|(a, b)| (a + 1, b + 1))) {
            prop_assert!(a >= 1 && b >= 1);
            prop_assert_eq!(a + b, b + a);
        }

        #[test]
        fn collections_sized(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn fixed_len_vec(v in prop::collection::vec(0usize..3, 7usize)) {
            prop_assert_eq!(v.len(), 7);
        }

        #[test]
        fn sets_bounded(s in prop::collection::btree_set(0u32..100, 1..6)) {
            prop_assert!(s.len() <= 5);
        }

        #[test]
        fn strings_have_no_controls(t in "\\PC*") {
            prop_assert!(t.chars().all(|c| !c.is_control()), "control char in {:?}", t);
        }

        #[test]
        fn early_ok_return(n in 0u32..10) {
            if n < 100 {
                return Ok(());
            }
            prop_assert!(false, "unreachable");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        let mut a = crate::test_runner::TestRng::deterministic("x");
        let mut b = crate::test_runner::TestRng::deterministic("x");
        let s = 0u64..1000;
        for _ in 0..32 {
            assert_eq!(s.sample(&mut a), s.sample(&mut b));
        }
    }

    #[test]
    #[should_panic(expected = "property 'always_fails' failed")]
    fn failures_panic_with_context() {
        proptest! {
            #![proptest_config(ProptestConfig::with_cases(3))]
            #[allow(unused)]
            fn always_fails(x in 0u32..10) {
                prop_assert!(false, "x = {}", x);
            }
        }
        always_fails();
    }
}
