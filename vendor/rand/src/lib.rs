//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! Provides [`rngs::StdRng`] (a SplitMix64 generator — deterministic,
//! fast, and statistically fine for synthetic traces and tie-breaking),
//! seeded via [`SeedableRng::seed_from_u64`], plus the [`Rng`] extension
//! methods used in this workspace: `gen`, `gen_range` over `Range` /
//! `RangeInclusive`, and `gen_bool`.

use std::ops::{Range, RangeInclusive};

/// Core randomness source: a stream of `u64`s.
pub trait RngCore {
    /// Produces the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Deterministic construction from a seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `state`.
    fn seed_from_u64(state: u64) -> Self;
}

/// Types samplable uniformly from the generator's full output range
/// (or `[0, 1)` for floats), backing [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
standard_uint!(u8, u16, u32, u64, usize);

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform bits into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges acceptable to [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range; panics if it is empty,
    /// matching `rand` 0.8.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits onto `[0, span)` with the widening-multiply
/// method (no modulo bias worth speaking of at these span sizes).
fn bounded<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

macro_rules! range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u64).wrapping_sub(self.start as u64);
                self.start.wrapping_add(bounded(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as u64).wrapping_sub(lo as u64).wrapping_add(1);
                if span == 0 {
                    // Full-width inclusive range of a 64-bit type.
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span) as $t)
            }
        }
    )*};
}
range_int!(u8, u16, u32, u64, usize);

macro_rules! range_signed {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                (self.start as i64).wrapping_add(bounded(rng, span) as i64) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start() as i64, *self.end() as i64);
                assert!(lo <= hi, "cannot sample empty range");
                let span = hi.wrapping_sub(lo).wrapping_add(1) as u64;
                if span == 0 {
                    return rng.next_u64() as $t;
                }
                lo.wrapping_add(bounded(rng, span) as i64) as $t
            }
        }
    )*};
}
range_signed!(i8, i16, i32, i64, isize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

/// Extension methods over any [`RngCore`] (mirrors `rand::Rng`).
pub trait Rng: RngCore {
    /// Draws a value from the type's standard distribution
    /// (`[0, 1)` for floats, full width for integers).
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Draws uniformly from `range`; panics if the range is empty.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T
    where
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`; panics unless `0 <= p <= 1`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators (mirrors `rand::rngs`).
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard seedable generator: SplitMix64.
    ///
    /// Chosen for its one-word state and strong equidistribution at the
    /// scales used here; the real `rand::rngs::StdRng` makes no stream
    /// stability promise across versions, so neither does this one.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let v = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&v));
            let v = rng.gen_range(1024..=u16::MAX);
            assert!(v >= 1024);
            let f = rng.gen::<f64>();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn degenerate_inclusive_range_works() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(rng.gen_range(4u32..=4), 4);
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    #[should_panic]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _ = rng.gen_range(5u32..5);
    }
}
