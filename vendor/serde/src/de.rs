//! Deserialization half: `Deserialize`, `Deserializer`, `de::Error`.

use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::Display;
use std::hash::Hash;

/// Error trait every deserializer error must implement (mirrors
/// `serde::de::Error`).
pub trait Error: Sized + std::error::Error {
    /// Builds an error carrying a custom message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A source of values (mirrors `serde::Deserializer`); everything
/// funnels through [`Deserializer::take_value`].
pub trait Deserializer<'de>: Sized {
    /// Error type.
    type Error: Error;

    /// Yields the value tree to decode from.
    fn take_value(self) -> Result<Value, Self::Error>;
}

/// A type constructible from the data model.
pub trait Deserialize<'de>: Sized {
    /// Deserializes from the given deserializer.
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Self, D::Error>;
}

/// String-message error used by [`ValueDeserializer`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DeError(pub String);

impl Display for DeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for DeError {}

impl Error for DeError {
    fn custom<T: Display>(msg: T) -> Self {
        DeError(msg.to_string())
    }
}

/// Deserializer over an owned value tree.
#[derive(Clone, Debug)]
pub struct ValueDeserializer {
    value: Value,
}

impl ValueDeserializer {
    /// Wraps a value.
    pub fn new(value: Value) -> Self {
        ValueDeserializer { value }
    }
}

impl<'de> Deserializer<'de> for ValueDeserializer {
    type Error = DeError;

    fn take_value(self) -> Result<Value, DeError> {
        Ok(self.value)
    }
}

/// Decodes a `T` from an owned value tree.
pub fn from_value<T: for<'de> Deserialize<'de>>(v: Value) -> Result<T, DeError> {
    T::deserialize(ValueDeserializer::new(v))
}

impl<'de> Deserialize<'de> for Value {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        d.take_value()
    }
}

fn type_err<E: Error>(expected: &str, got: &Value) -> E {
    E::custom(format!("expected {expected}, got {}", got.kind()))
}

/// Extracts an unsigned integer, accepting integer values and — to
/// support integers used as JSON object keys — numeric strings.
fn as_u64<E: Error>(v: &Value, expected: &str) -> Result<u64, E> {
    match v {
        Value::U64(n) => Ok(*n),
        Value::I64(n) if *n >= 0 => Ok(*n as u64),
        Value::F64(f) if *f >= 0.0 && f.fract() == 0.0 && *f <= u64::MAX as f64 => Ok(*f as u64),
        Value::Str(s) => s
            .parse::<u64>()
            .map_err(|_| E::custom(format!("expected {expected}, got string {s:?}"))),
        other => Err(type_err(expected, other)),
    }
}

fn as_i64<E: Error>(v: &Value, expected: &str) -> Result<i64, E> {
    match v {
        Value::I64(n) => Ok(*n),
        Value::U64(n) if *n <= i64::MAX as u64 => Ok(*n as i64),
        Value::F64(f) if f.fract() == 0.0 && *f >= i64::MIN as f64 && *f <= i64::MAX as f64 => {
            Ok(*f as i64)
        }
        Value::Str(s) => s
            .parse::<i64>()
            .map_err(|_| E::custom(format!("expected {expected}, got string {s:?}"))),
        other => Err(type_err(expected, other)),
    }
}

macro_rules! de_unsigned {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let n = as_u64::<D::Error>(&v, stringify!($t))?;
                <$t>::try_from(n).map_err(|_| {
                    D::Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
de_unsigned!(u8, u16, u32, u64, usize);

macro_rules! de_signed {
    ($($t:ty),*) => {$(
        impl<'de> Deserialize<'de> for $t {
            fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
                let v = d.take_value()?;
                let n = as_i64::<D::Error>(&v, stringify!($t))?;
                <$t>::try_from(n).map_err(|_| {
                    D::Error::custom(format!("{n} out of range for {}", stringify!($t)))
                })
            }
        }
    )*};
}
de_signed!(i8, i16, i32, i64, isize);

impl<'de> Deserialize<'de> for f64 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::F64(f) => Ok(f),
            Value::U64(n) => Ok(n as f64),
            Value::I64(n) => Ok(n as f64),
            other => Err(type_err("f64", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for f32 {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        f64::deserialize(d).map(|f| f as f32)
    }
}

impl<'de> Deserialize<'de> for bool {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Bool(b) => Ok(b),
            other => Err(type_err("bool", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for String {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Str(s) => Ok(s),
            other => Err(type_err("string", &other)),
        }
    }
}

impl<'de> Deserialize<'de> for char {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        let s = String::deserialize(d)?;
        let mut it = s.chars();
        match (it.next(), it.next()) {
            (Some(c), None) => Ok(c),
            _ => Err(D::Error::custom(format!(
                "expected single character, got {s:?}"
            ))),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Option<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Null => Ok(None),
            v => from_value::<T>(v).map(Some).map_err(D::Error::custom),
        }
    }
}

// `Option<T>` above consumes the value with a concrete `ValueDeserializer`,
// so `T` only needs the blanket-lifetime bound; same for the containers
// below.

impl<'de, T: for<'a> Deserialize<'a>> Deserialize<'de> for Vec<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Seq(items) => items
                .into_iter()
                .map(|v| from_value::<T>(v).map_err(D::Error::custom))
                .collect(),
            other => Err(type_err("array", &other)),
        }
    }
}

impl<'de, T: for<'a> Deserialize<'a> + Ord> Deserialize<'de> for BTreeSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(|v| v.into_iter().collect())
    }
}

impl<'de, T: for<'a> Deserialize<'a> + Eq + Hash> Deserialize<'de> for HashSet<T> {
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        Vec::<T>::deserialize(d).map(|v| v.into_iter().collect())
    }
}

impl<'de, K, V> Deserialize<'de> for BTreeMap<K, V>
where
    K: for<'a> Deserialize<'a> + Ord,
    V: for<'a> Deserialize<'a>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    let key = from_value::<K>(Value::Str(k)).map_err(D::Error::custom)?;
                    let val = from_value::<V>(v).map_err(D::Error::custom)?;
                    Ok((key, val))
                })
                .collect(),
            other => Err(type_err("object", &other)),
        }
    }
}

impl<'de, K, V> Deserialize<'de> for HashMap<K, V>
where
    K: for<'a> Deserialize<'a> + Eq + Hash,
    V: for<'a> Deserialize<'a>,
{
    fn deserialize<D: Deserializer<'de>>(d: D) -> Result<Self, D::Error> {
        match d.take_value()? {
            Value::Map(entries) => entries
                .into_iter()
                .map(|(k, v)| {
                    let key = from_value::<K>(Value::Str(k)).map_err(D::Error::custom)?;
                    let val = from_value::<V>(v).map_err(D::Error::custom)?;
                    Ok((key, val))
                })
                .collect(),
            other => Err(type_err("object", &other)),
        }
    }
}

macro_rules! de_tuple {
    ($n:expr; $($name:ident),+) => {
        impl<'de, $($name: for<'a> Deserialize<'a>),+> Deserialize<'de> for ($($name,)+) {
            fn deserialize<De: Deserializer<'de>>(d: De) -> Result<Self, De::Error> {
                match d.take_value()? {
                    Value::Seq(items) => {
                        if items.len() != $n {
                            return Err(De::Error::custom(format!(
                                "expected array of {} elements, got {}",
                                $n,
                                items.len()
                            )));
                        }
                        let mut it = items.into_iter();
                        Ok((
                            $(
                                from_value::<$name>(it.next().unwrap_or(Value::Null))
                                    .map_err(De::Error::custom)?,
                            )+
                        ))
                    }
                    other => Err(type_err("array", &other)),
                }
            }
        }
    };
}
de_tuple!(1; A);
de_tuple!(2; A, B);
de_tuple!(3; A, B, C);
de_tuple!(4; A, B, C, D);
de_tuple!(5; A, B, C, D, E);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round() {
        assert_eq!(from_value::<u32>(Value::U64(7)).unwrap(), 7);
        assert_eq!(from_value::<i32>(Value::I64(-7)).unwrap(), -7);
        assert_eq!(from_value::<f64>(Value::U64(2)).unwrap(), 2.0);
        assert_eq!(
            from_value::<String>(Value::Str("x".into())).unwrap(),
            "x".to_string()
        );
        assert!(from_value::<u8>(Value::U64(300)).is_err());
        assert!(from_value::<bool>(Value::U64(1)).is_err());
    }

    #[test]
    fn numeric_string_keys_parse() {
        assert_eq!(from_value::<u32>(Value::Str("41".into())).unwrap(), 41);
        assert!(from_value::<u32>(Value::Str("x".into())).is_err());
    }

    #[test]
    fn containers_round() {
        let v = Value::Seq(vec![Value::U64(1), Value::U64(2)]);
        assert_eq!(from_value::<Vec<u8>>(v).unwrap(), vec![1, 2]);
        let m = Value::Map(vec![("5".to_string(), Value::Str("a".into()))]);
        let map: BTreeMap<u32, String> = from_value(m).unwrap();
        assert_eq!(map.get(&5).map(String::as_str), Some("a"));
    }

    #[test]
    fn options_and_tuples() {
        assert_eq!(from_value::<Option<u8>>(Value::Null).unwrap(), None);
        assert_eq!(from_value::<Option<u8>>(Value::U64(3)).unwrap(), Some(3));
        let t: (u8, String) =
            from_value(Value::Seq(vec![Value::U64(1), Value::Str("b".into())])).unwrap();
        assert_eq!(t, (1, "b".to_string()));
        assert!(from_value::<(u8, u8)>(Value::Seq(vec![Value::U64(1)])).is_err());
    }
}
