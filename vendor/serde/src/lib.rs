//! Offline stand-in for `serde`.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the *subset* of the serde 1.x API surface the workspace
//! actually uses, over a simple owned value tree ([`value::Value`])
//! instead of serde's zero-copy visitor architecture. The public trait
//! signatures (`Serialize`, `Deserialize`, `Serializer`, `Deserializer`,
//! `ser::Error`, `de::Error`) match serde closely enough that all
//! hand-written impls and `#[derive(Serialize, Deserialize)]` code in
//! this repository compile unchanged; swapping the real serde back in
//! requires only a Cargo.toml change.

pub mod de;
pub mod ser;
pub mod value;

pub use de::{Deserialize, Deserializer};
pub use ser::{Serialize, Serializer};

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

/// Items the derive macro expansion needs at stable paths.
#[doc(hidden)]
pub mod __private {
    pub use crate::de::{from_value, DeError, ValueDeserializer};
    pub use crate::ser::{to_value, SerError, ValueSerializer};
    pub use crate::value::{take_entry, Value};
}
