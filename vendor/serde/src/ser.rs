//! Serialization half: `Serialize`, `Serializer`, `ser::Error`.

use crate::value::Value;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet};
use std::fmt::Display;

/// Error trait every serializer error must implement (mirrors
/// `serde::ser::Error`).
pub trait Error: Sized + std::error::Error {
    /// Builds an error carrying a custom message.
    fn custom<T: Display>(msg: T) -> Self;
}

/// A data format (or value sink) that can consume the data model.
///
/// Unlike real serde's 30-method trait, everything funnels through
/// [`Serializer::serialize_value`]; `collect_str` is kept as a distinct
/// entry point because hand-written impls in this workspace call it.
pub trait Serializer: Sized {
    /// Output produced on success.
    type Ok;
    /// Error type.
    type Error: Error;

    /// Consumes a fully-built value tree.
    fn serialize_value(self, v: Value) -> Result<Self::Ok, Self::Error>;

    /// Serializes a value via its `Display` representation.
    fn collect_str<T: Display + ?Sized>(self, value: &T) -> Result<Self::Ok, Self::Error> {
        self.serialize_value(Value::Str(value.to_string()))
    }
}

/// A type that can describe itself to any [`Serializer`].
pub trait Serialize {
    /// Serializes `self` into the given serializer.
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error>;
}

/// String-message error used by [`ValueSerializer`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SerError(pub String);

impl Display for SerError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for SerError {}

impl Error for SerError {
    fn custom<T: Display>(msg: T) -> Self {
        SerError(msg.to_string())
    }
}

/// Serializer that materializes the value tree itself.
#[derive(Clone, Copy, Debug, Default)]
pub struct ValueSerializer;

impl Serializer for ValueSerializer {
    type Ok = Value;
    type Error = SerError;

    fn serialize_value(self, v: Value) -> Result<Value, SerError> {
        Ok(v)
    }
}

/// Serializes any value into the owned tree. Infallible for every
/// `Serialize` impl in this workspace (the only error path is a map key
/// that is neither a string nor an integer, which [`to_value`] reports
/// by embedding an error marker — see [`map_key`]).
pub fn to_value<T: Serialize + ?Sized>(v: &T) -> Value {
    match v.serialize(ValueSerializer) {
        Ok(v) => v,
        Err(e) => Value::Str(format!("<serialization error: {e}>")),
    }
}

/// Renders a value usable as an object key (strings and integers only,
/// like `serde_json` map-key semantics).
pub fn map_key(v: &Value) -> Result<String, SerError> {
    match v {
        Value::Str(s) => Ok(s.clone()),
        Value::U64(n) => Ok(n.to_string()),
        Value::I64(n) => Ok(n.to_string()),
        other => Err(SerError(format!(
            "map key must be a string, got {}",
            other.kind()
        ))),
    }
}

impl Serialize for Value {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(self.clone())
    }
}

macro_rules! ser_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::U64(*self as u64))
            }
        }
    )*};
}
ser_unsigned!(u8, u16, u32, u64, usize);

macro_rules! ser_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                let v = *self as i64;
                if v >= 0 {
                    s.serialize_value(Value::U64(v as u64))
                } else {
                    s.serialize_value(Value::I64(v))
                }
            }
        }
    )*};
}
ser_signed!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self))
    }
}

impl Serialize for f32 {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::F64(*self as f64))
    }
}

impl Serialize for bool {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Bool(*self))
    }
}

impl Serialize for char {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

impl Serialize for String {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.clone()))
    }
}

impl Serialize for str {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Str(self.to_string()))
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        (**self).serialize(s)
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        match self {
            None => s.serialize_value(Value::Null),
            Some(v) => v.serialize(s),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for [T] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Seq(self.iter().map(|v| to_value(v)).collect()))
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        self.as_slice().serialize(s)
    }
}

impl<T: Serialize> Serialize for BTreeSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Seq(self.iter().map(|v| to_value(v)).collect()))
    }
}

impl<T: Serialize> Serialize for HashSet<T> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        s.serialize_value(Value::Seq(self.iter().map(|v| to_value(v)).collect()))
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut entries = Vec::with_capacity(self.len());
        for (k, v) in self {
            let key = map_key(&to_value(k)).map_err(S::Error::custom)?;
            entries.push((key, to_value(v)));
        }
        s.serialize_value(Value::Map(entries))
    }
}

impl<K: Serialize, V: Serialize> Serialize for HashMap<K, V> {
    fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
        let mut entries = Vec::with_capacity(self.len());
        for (k, v) in self {
            let key = map_key(&to_value(k)).map_err(S::Error::custom)?;
            entries.push((key, to_value(v)));
        }
        s.serialize_value(Value::Map(entries))
    }
}

macro_rules! ser_tuple {
    ($($name:ident : $idx:tt),+) => {
        impl<$($name: Serialize),+> Serialize for ($($name,)+) {
            fn serialize<S: Serializer>(&self, s: S) -> Result<S::Ok, S::Error> {
                s.serialize_value(Value::Seq(vec![$(to_value(&self.$idx)),+]))
            }
        }
    };
}
ser_tuple!(A: 0);
ser_tuple!(A: 0, B: 1);
ser_tuple!(A: 0, B: 1, C: 2);
ser_tuple!(A: 0, B: 1, C: 2, D: 3);
ser_tuple!(A: 0, B: 1, C: 2, D: 3, E: 4);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_to_value() {
        assert_eq!(to_value(&7u32), Value::U64(7));
        assert_eq!(to_value(&-3i64), Value::I64(-3));
        assert_eq!(to_value(&true), Value::Bool(true));
        assert_eq!(to_value(&1.5f64), Value::F64(1.5));
        assert_eq!(to_value("hi"), Value::Str("hi".to_string()));
        assert_eq!(to_value(&None::<u8>), Value::Null);
        assert_eq!(to_value(&Some(1u8)), Value::U64(1));
    }

    #[test]
    fn collections_to_value() {
        assert_eq!(
            to_value(&vec![1u8, 2]),
            Value::Seq(vec![Value::U64(1), Value::U64(2)])
        );
        let mut m = BTreeMap::new();
        m.insert(3u32, "x".to_string());
        assert_eq!(
            to_value(&m),
            Value::Map(vec![("3".to_string(), Value::Str("x".to_string()))])
        );
        assert_eq!(
            to_value(&(1u8, "a")),
            Value::Seq(vec![Value::U64(1), Value::Str("a".to_string())])
        );
    }

    #[test]
    fn non_scalar_map_key_is_rejected() {
        assert!(map_key(&Value::Seq(vec![])).is_err());
        assert_eq!(map_key(&Value::U64(9)).unwrap(), "9");
    }
}
