//! The owned value tree all (de)serialization routes through.

/// A JSON-shaped value: the serialization data model of this stand-in.
///
/// Unsigned and signed integers are kept apart so `u64` values above
/// `i64::MAX` survive a round trip losslessly.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// Non-negative integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating-point number.
    F64(f64),
    /// String.
    Str(String),
    /// Array.
    Seq(Vec<Value>),
    /// Object, preserving insertion order.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// A short human-readable name of the value's kind, for error
    /// messages.
    pub fn kind(&self) -> &'static str {
        match self {
            Value::Null => "null",
            Value::Bool(_) => "bool",
            Value::U64(_) | Value::I64(_) => "integer",
            Value::F64(_) => "number",
            Value::Str(_) => "string",
            Value::Seq(_) => "array",
            Value::Map(_) => "object",
        }
    }
}

/// Removes and returns the first entry named `key` from an object's
/// entry list (derive-macro helper for struct field extraction).
pub fn take_entry(entries: &mut Vec<(String, Value)>, key: &str) -> Option<Value> {
    let idx = entries.iter().position(|(k, _)| k == key)?;
    Some(entries.remove(idx).1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_entry_removes_first_match() {
        let mut m = vec![
            ("a".to_string(), Value::U64(1)),
            ("b".to_string(), Value::U64(2)),
        ];
        assert_eq!(take_entry(&mut m, "b"), Some(Value::U64(2)));
        assert_eq!(m.len(), 1);
        assert_eq!(take_entry(&mut m, "b"), None);
    }

    #[test]
    fn kinds_are_stable() {
        assert_eq!(Value::Null.kind(), "null");
        assert_eq!(Value::U64(1).kind(), "integer");
        assert_eq!(Value::Seq(vec![]).kind(), "array");
    }
}
