//! Offline stand-in for `serde_derive`.
//!
//! Generates `Serialize`/`Deserialize` impls targeting the vendored
//! `serde` value model. Since `syn`/`quote` are unavailable offline, the
//! item is parsed directly from its token stream. Supported shapes —
//! exactly the ones this workspace uses:
//!
//! * structs with named fields (honoring `#[serde(default)]` and
//!   `#[serde(with = "module")]` field attributes),
//! * tuple/newtype structs,
//! * enums with unit, tuple, and struct variants (externally tagged,
//!   matching `serde_json`'s representation).
//!
//! Generics, lifetimes, and other serde attributes are intentionally
//! unsupported and produce a compile-time panic naming the construct.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// One parsed field of a struct or struct variant.
struct Field {
    name: String,
    /// `#[serde(default)]`: substitute `Default::default()` when absent.
    default: bool,
    /// `#[serde(with = "path")]`: route through `path::{serialize,deserialize}`.
    with: Option<String>,
}

/// Field layout of a struct or enum variant.
enum Fields {
    Named(Vec<Field>),
    /// Tuple layout with this arity.
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum ItemKind {
    Struct(Fields),
    Enum(Vec<Variant>),
}

struct Item {
    name: String,
    kind: ItemKind,
}

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_serialize(&item)
        .parse()
        .expect("serde_derive: generated Serialize impl must parse")
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = parse_item(input);
    gen_deserialize(&item)
        .parse()
        .expect("serde_derive: generated Deserialize impl must parse")
}

// ---------------------------------------------------------------------------
// Token-stream parsing
// ---------------------------------------------------------------------------

/// Serde-relevant attributes gathered from one `#[...]` run.
#[derive(Default)]
struct SerdeAttrs {
    default: bool,
    with: Option<String>,
}

/// Consumes any leading attributes starting at `i`, folding `serde`
/// attribute contents into the result.
fn skip_attrs(tokens: &[TokenTree], mut i: usize) -> (usize, SerdeAttrs) {
    let mut attrs = SerdeAttrs::default();
    while i + 1 < tokens.len() {
        let (TokenTree::Punct(p), TokenTree::Group(g)) = (&tokens[i], &tokens[i + 1]) else {
            break;
        };
        if p.as_char() != '#' || g.delimiter() != Delimiter::Bracket {
            break;
        }
        parse_serde_attr(&g.stream(), &mut attrs);
        i += 2;
    }
    (i, attrs)
}

/// Parses the inside of one `#[...]`; folds in `serde(...)` settings.
fn parse_serde_attr(stream: &TokenStream, attrs: &mut SerdeAttrs) {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    match tokens.first() {
        Some(TokenTree::Ident(id)) if id.to_string() == "serde" => {}
        _ => return, // doc comment or foreign attribute
    }
    let Some(TokenTree::Group(args)) = tokens.get(1) else {
        return;
    };
    let inner: Vec<TokenTree> = args.stream().into_iter().collect();
    let mut j = 0;
    while j < inner.len() {
        match &inner[j] {
            TokenTree::Ident(id) if id.to_string() == "default" => {
                attrs.default = true;
                j += 1;
            }
            TokenTree::Ident(id) if id.to_string() == "with" => {
                let Some(TokenTree::Literal(lit)) = inner.get(j + 2) else {
                    panic!("serde_derive: expected #[serde(with = \"path\")]");
                };
                let raw = lit.to_string();
                attrs.with = Some(raw.trim_matches('"').to_string());
                j += 3;
            }
            TokenTree::Punct(p) if p.as_char() == ',' => j += 1,
            other => panic!("serde_derive: unsupported serde attribute `{other}`"),
        }
    }
}

/// Skips `pub`, `pub(...)` visibility starting at `i`.
fn skip_vis(tokens: &[TokenTree], mut i: usize) -> usize {
    if let Some(TokenTree::Ident(id)) = tokens.get(i) {
        if id.to_string() == "pub" {
            i += 1;
            if let Some(TokenTree::Group(g)) = tokens.get(i) {
                if g.delimiter() == Delimiter::Parenthesis {
                    i += 1;
                }
            }
        }
    }
    i
}

fn parse_item(input: TokenStream) -> Item {
    let tokens: Vec<TokenTree> = input.into_iter().collect();
    let (mut i, _) = skip_attrs(&tokens, 0);
    i = skip_vis(&tokens, i);
    let keyword = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected struct/enum, found {other:?}"),
    };
    i += 1;
    let name = match tokens.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => panic!("serde_derive: expected item name, found {other:?}"),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = tokens.get(i) {
        if p.as_char() == '<' {
            panic!("serde_derive: generic type `{name}` is not supported by the offline stand-in");
        }
    }
    let kind = match keyword.as_str() {
        "struct" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Struct(Fields::Named(parse_named_fields(&g.stream())))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                ItemKind::Struct(Fields::Tuple(count_tuple_fields(&g.stream())))
            }
            Some(TokenTree::Punct(p)) if p.as_char() == ';' => ItemKind::Struct(Fields::Unit),
            other => panic!("serde_derive: malformed struct `{name}`: {other:?}"),
        },
        "enum" => match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                ItemKind::Enum(parse_variants(&g.stream()))
            }
            other => panic!("serde_derive: malformed enum `{name}`: {other:?}"),
        },
        other => panic!("serde_derive: cannot derive for `{other}` items"),
    };
    Item { name, kind }
}

/// Parses `name: Type, ...` field lists (types are skipped; only names
/// and serde attributes matter to the generated code).
fn parse_named_fields(stream: &TokenStream) -> Vec<Field> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut fields = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, attrs) = skip_attrs(&tokens, i);
        i = skip_vis(&tokens, next);
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected field name, found {other:?}"),
        };
        i += 1;
        match tokens.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == ':' => i += 1,
            other => panic!("serde_derive: expected `:` after field `{name}`, found {other:?}"),
        }
        // Skip the type: consume until a comma outside any generic
        // angle-bracket nesting (grouped tokens are single trees, so
        // only `<`/`>` depth needs tracking).
        let mut angle = 0i32;
        while i < tokens.len() {
            match &tokens[i] {
                TokenTree::Punct(p) if p.as_char() == '<' => angle += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => angle -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                    i += 1;
                    break;
                }
                _ => {}
            }
            i += 1;
        }
        fields.push(Field {
            name,
            default: attrs.default,
            with: attrs.with,
        });
    }
    fields
}

/// Counts the fields of a tuple struct / tuple variant payload.
fn count_tuple_fields(stream: &TokenStream) -> usize {
    let mut count = 0;
    let mut pending = false;
    let mut angle = 0i32;
    for tt in stream.clone() {
        match &tt {
            TokenTree::Punct(p) if p.as_char() == '<' => {
                angle += 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == '>' => {
                angle -= 1;
                pending = true;
            }
            TokenTree::Punct(p) if p.as_char() == ',' && angle == 0 => {
                if pending {
                    count += 1;
                    pending = false;
                }
            }
            _ => pending = true,
        }
    }
    if pending {
        count += 1;
    }
    count
}

fn parse_variants(stream: &TokenStream) -> Vec<Variant> {
    let tokens: Vec<TokenTree> = stream.clone().into_iter().collect();
    let mut variants = Vec::new();
    let mut i = 0;
    while i < tokens.len() {
        let (next, _attrs) = skip_attrs(&tokens, i);
        i = next;
        let name = match tokens.get(i) {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => panic!("serde_derive: expected variant name, found {other:?}"),
        };
        i += 1;
        let fields = match tokens.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                i += 1;
                Fields::Named(parse_named_fields(&g.stream()))
            }
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                i += 1;
                Fields::Tuple(count_tuple_fields(&g.stream()))
            }
            _ => Fields::Unit,
        };
        if let Some(TokenTree::Punct(p)) = tokens.get(i) {
            if p.as_char() == ',' {
                i += 1;
            } else if p.as_char() == '=' {
                panic!("serde_derive: explicit discriminants are not supported");
            }
        }
        variants.push(Variant { name, fields });
    }
    variants
}

// ---------------------------------------------------------------------------
// Code generation (string-built, parsed back into a TokenStream)
// ---------------------------------------------------------------------------

const VAL: &str = "serde::__private::Value";
const TO_VALUE: &str = "serde::__private::to_value";
const FROM_VALUE: &str = "serde::__private::from_value";
const TAKE_ENTRY: &str = "serde::__private::take_entry";
const SER_ERR: &str = "<S::Error as serde::ser::Error>::custom";
const DE_ERR: &str = "<D::Error as serde::de::Error>::custom";

/// `vec![("a".to_string(), to_value(&EXPR.a)), ...]` for named fields;
/// `access` is the prefix producing each field (e.g. `self.` or a
/// binding prefix for enum struct variants).
fn named_entries(fields: &[Field], access: &dyn Fn(&str) -> String) -> String {
    let mut out = String::from("{ let mut entries: Vec<(String, ");
    out.push_str(VAL);
    out.push_str(")> = Vec::new(); ");
    for f in fields {
        let expr = access(&f.name);
        match &f.with {
            None => out.push_str(&format!(
                "entries.push((String::from(\"{n}\"), {TO_VALUE}(&{expr})));",
                n = f.name
            )),
            Some(path) => out.push_str(&format!(
                "entries.push((String::from(\"{n}\"), \
                 {path}::serialize(&{expr}, serde::__private::ValueSerializer)\
                 .map_err({SER_ERR})?));",
                n = f.name
            )),
        }
    }
    out.push_str(&format!("{VAL}::Map(entries) }}"));
    out
}

fn gen_serialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let entries = named_entries(fields, &|f| format!("self.{f}"));
            format!("serializer.serialize_value({entries})")
        }
        ItemKind::Struct(Fields::Tuple(1)) => {
            "serde::ser::Serialize::serialize(&self.0, serializer)".to_string()
        }
        ItemKind::Struct(Fields::Tuple(n)) => {
            let items: Vec<String> = (0..*n).map(|i| format!("{TO_VALUE}(&self.{i})")).collect();
            format!(
                "serializer.serialize_value({VAL}::Seq(vec![{}]))",
                items.join(", ")
            )
        }
        ItemKind::Struct(Fields::Unit) => format!("serializer.serialize_value({VAL}::Null)"),
        ItemKind::Enum(variants) => {
            let mut arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => arms.push_str(&format!(
                        "{name}::{vn} => serializer.serialize_value(\
                         {VAL}::Str(String::from(\"{vn}\"))),"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let payload = if *n == 1 {
                            format!("{TO_VALUE}(f0)")
                        } else {
                            let items: Vec<String> =
                                binds.iter().map(|b| format!("{TO_VALUE}({b})")).collect();
                            format!("{VAL}::Seq(vec![{}])", items.join(", "))
                        };
                        arms.push_str(&format!(
                            "{name}::{vn}({binds}) => serializer.serialize_value(\
                             {VAL}::Map(vec![(String::from(\"{vn}\"), {payload})])),",
                            binds = binds.join(", ")
                        ));
                    }
                    Fields::Named(fields) => {
                        let binds: Vec<String> = fields
                            .iter()
                            .map(|f| format!("{n}: b_{n}", n = f.name))
                            .collect();
                        let entries = named_entries(fields, &|f| format!("b_{f}"));
                        arms.push_str(&format!(
                            "{name}::{vn} {{ {binds} }} => serializer.serialize_value(\
                             {VAL}::Map(vec![(String::from(\"{vn}\"), {entries})])),",
                            binds = binds.join(", ")
                        ));
                    }
                }
            }
            format!("match self {{ {arms} }}")
        }
    };
    format!(
        "#[automatically_derived] impl serde::ser::Serialize for {name} {{ \
         fn serialize<S: serde::ser::Serializer>(&self, serializer: S) \
         -> Result<S::Ok, S::Error> {{ {body} }} }}"
    )
}

/// Builds the field initializers of a named-field constructor from a
/// mutable `entries` vector in scope.
fn named_inits(type_label: &str, fields: &[Field]) -> String {
    let mut out = String::new();
    for f in fields {
        let n = &f.name;
        let missing = if f.default {
            "Default::default()".to_string()
        } else {
            format!("return Err({DE_ERR}(\"missing field `{n}` in {type_label}\"))")
        };
        let decode = match &f.with {
            None => format!("{FROM_VALUE}(v).map_err({DE_ERR})?"),
            Some(path) => format!(
                "{path}::deserialize(serde::__private::ValueDeserializer::new(v))\
                 .map_err({DE_ERR})?"
            ),
        };
        out.push_str(&format!(
            "{n}: match {TAKE_ENTRY}(&mut entries, \"{n}\") {{ \
             Some(v) => {decode}, None => {missing}, }},"
        ));
    }
    out
}

/// Builds a positional decode of `n` values from an `items` vector in
/// scope, as comma-separated expressions.
fn tuple_args(n: usize) -> String {
    (0..n)
        .map(|_| {
            format!(
                "match it.next() {{ \
                 Some(v) => {FROM_VALUE}(v).map_err({DE_ERR})?, \
                 None => return Err({DE_ERR}(\"array too short\")), }}"
            )
        })
        .collect::<Vec<_>>()
        .join(", ")
}

fn gen_deserialize(item: &Item) -> String {
    let name = &item.name;
    let body = match &item.kind {
        ItemKind::Struct(Fields::Named(fields)) => {
            let inits = named_inits(&format!("struct {name}"), fields);
            format!(
                "let mut entries = match deserializer.take_value()? {{ \
                 {VAL}::Map(m) => m, \
                 other => return Err({DE_ERR}(format!(\
                 \"expected object for struct {name}, got {{}}\", other.kind()))), }}; \
                 let _ = &mut entries; \
                 Ok({name} {{ {inits} }})"
            )
        }
        ItemKind::Struct(Fields::Tuple(1)) => {
            format!("Ok({name}({FROM_VALUE}(deserializer.take_value()?).map_err({DE_ERR})?))")
        }
        ItemKind::Struct(Fields::Tuple(n)) => format!(
            "let items = match deserializer.take_value()? {{ \
             {VAL}::Seq(s) => s, \
             other => return Err({DE_ERR}(format!(\
             \"expected array for struct {name}, got {{}}\", other.kind()))), }}; \
             if items.len() != {n} {{ return Err({DE_ERR}(format!(\
             \"expected {n} elements for struct {name}, got {{}}\", items.len()))); }} \
             let mut it = items.into_iter(); \
             Ok({name}({args}))",
            args = tuple_args(*n)
        ),
        ItemKind::Struct(Fields::Unit) => format!("Ok({name})"),
        ItemKind::Enum(variants) => {
            let mut unit_arms = String::new();
            let mut data_arms = String::new();
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {
                        unit_arms.push_str(&format!("\"{vn}\" => Ok({name}::{vn}),"));
                        // Tolerate the `{"V": null}` spelling too.
                        data_arms.push_str(&format!(
                            "\"{vn}\" => match payload {{ \
                             {VAL}::Null => Ok({name}::{vn}), \
                             other => Err({DE_ERR}(format!(\
                             \"unexpected payload for unit variant {name}::{vn}: {{}}\", \
                             other.kind()))), }},"
                        ));
                    }
                    Fields::Tuple(1) => data_arms.push_str(&format!(
                        "\"{vn}\" => Ok({name}::{vn}(\
                         {FROM_VALUE}(payload).map_err({DE_ERR})?)),"
                    )),
                    Fields::Tuple(n) => data_arms.push_str(&format!(
                        "\"{vn}\" => {{ \
                         let items = match payload {{ \
                         {VAL}::Seq(s) => s, \
                         other => return Err({DE_ERR}(format!(\
                         \"expected array for variant {name}::{vn}, got {{}}\", \
                         other.kind()))), }}; \
                         if items.len() != {n} {{ return Err({DE_ERR}(format!(\
                         \"expected {n} elements for variant {name}::{vn}, got {{}}\", \
                         items.len()))); }} \
                         let mut it = items.into_iter(); \
                         Ok({name}::{vn}({args})) }},",
                        args = tuple_args(*n)
                    )),
                    Fields::Named(fields) => {
                        let inits = named_inits(&format!("variant {name}::{vn}"), fields);
                        data_arms.push_str(&format!(
                            "\"{vn}\" => {{ \
                             let mut entries = match payload {{ \
                             {VAL}::Map(m) => m, \
                             other => return Err({DE_ERR}(format!(\
                             \"expected object for variant {name}::{vn}, got {{}}\", \
                             other.kind()))), }}; \
                             let _ = &mut entries; \
                             Ok({name}::{vn} {{ {inits} }}) }},"
                        ));
                    }
                }
            }
            format!(
                "match deserializer.take_value()? {{ \
                 {VAL}::Str(tag) => match tag.as_str() {{ \
                 {unit_arms} \
                 other => Err({DE_ERR}(format!(\
                 \"unknown variant `{{other}}` of enum {name}\"))), }}, \
                 {VAL}::Map(mut entries) => {{ \
                 if entries.len() != 1 {{ return Err({DE_ERR}(\
                 \"expected single-key object for enum {name}\")); }} \
                 let (tag, payload) = entries.remove(0); \
                 let _ = &payload; \
                 match tag.as_str() {{ \
                 {data_arms} \
                 other => Err({DE_ERR}(format!(\
                 \"unknown variant `{{other}}` of enum {name}\"))), }} }}, \
                 other => Err({DE_ERR}(format!(\
                 \"expected string or object for enum {name}, got {{}}\", other.kind()))), }}"
            )
        }
    };
    format!(
        "#[automatically_derived] impl<'de> serde::de::Deserialize<'de> for {name} {{ \
         fn deserialize<D: serde::de::Deserializer<'de>>(deserializer: D) \
         -> Result<Self, D::Error> {{ {body} }} }}"
    )
}
