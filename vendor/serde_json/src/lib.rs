//! Offline stand-in for `serde_json`.
//!
//! Renders the vendored serde value model as JSON text and parses JSON
//! text back, exposing the `to_string` / `to_string_pretty` / `from_str`
//! subset of the serde_json 1.x API this workspace uses. The parser is
//! strict: it rejects trailing garbage, caps nesting depth (corrupted or
//! adversarial input must error, never crash the process), and reports
//! byte offsets in errors.

use serde::de::Deserialize;
use serde::ser::{to_value, Serialize};
use serde::value::Value;
use std::fmt::Write as _;

/// Errors produced while emitting or parsing JSON.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    msg: String,
    /// Byte offset in the input, when parsing.
    offset: Option<usize>,
}

impl Error {
    fn new(msg: impl Into<String>) -> Self {
        Error {
            msg: msg.into(),
            offset: None,
        }
    }

    fn at(msg: impl Into<String>, offset: usize) -> Self {
        Error {
            msg: msg.into(),
            offset: Some(offset),
        }
    }
}

impl std::fmt::Display for Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.offset {
            Some(off) => write!(f, "{} at byte {off}", self.msg),
            None => write!(f, "{}", self.msg),
        }
    }
}

impl std::error::Error for Error {}

impl serde::de::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

impl serde::ser::Error for Error {
    fn custom<T: std::fmt::Display>(msg: T) -> Self {
        Error::new(msg.to_string())
    }
}

/// Maximum nesting depth accepted by the parser; deeper input errors
/// instead of risking a stack overflow on garbage like `[[[[...`.
const MAX_DEPTH: usize = 128;

// ---------------------------------------------------------------------------
// Serialization
// ---------------------------------------------------------------------------

/// Serializes a value to compact JSON.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value), None, 0);
    Ok(out)
}

/// Serializes a value to human-readable, 2-space-indented JSON.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &to_value(value), Some(2), 0);
    Ok(out)
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::U64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::I64(n) => {
            let _ = write!(out, "{n}");
        }
        Value::F64(f) => {
            if f.is_finite() {
                // `{:?}` prints the shortest representation that parses
                // back to the same f64, always with a decimal point or
                // exponent (so the value re-parses as a float).
                let _ = write!(out, "{f:?}");
            } else {
                // JSON has no NaN/Infinity; emit null like serde_json.
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                write_string(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing
// ---------------------------------------------------------------------------

/// Parses a JSON document into any deserializable type. The entire
/// input must be one JSON value (plus whitespace); anything else —
/// truncation, trailing bytes, bad escapes, absurd nesting — errors.
pub fn from_str<T: for<'de> Deserialize<'de>>(s: &str) -> Result<T, Error> {
    let value = parse_value_str(s)?;
    T::deserialize(ValueDe { value })
}

/// Parses a JSON document into the raw value tree.
pub fn parse_value_str(s: &str) -> Result<Value, Error> {
    let bytes = s.as_bytes();
    let mut p = Parser { bytes, pos: 0 };
    p.skip_ws();
    let v = p.parse_value(0)?;
    p.skip_ws();
    if p.pos != bytes.len() {
        return Err(Error::at("trailing characters after JSON value", p.pos));
    }
    Ok(v)
}

/// Adapter giving `from_str` a `Deserializer` with this crate's error
/// type (so `serde_json::Error` is what callers see end to end).
struct ValueDe {
    value: Value,
}

impl<'de> serde::de::Deserializer<'de> for ValueDe {
    type Error = Error;

    fn take_value(self) -> Result<Value, Error> {
        Ok(self.value)
    }
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::at(format!("expected `{}`", b as char), self.pos))
        }
    }

    fn parse_value(&mut self, depth: usize) -> Result<Value, Error> {
        if depth > MAX_DEPTH {
            return Err(Error::at("maximum nesting depth exceeded", self.pos));
        }
        match self.peek() {
            None => Err(Error::at("unexpected end of input", self.pos)),
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => self.parse_string().map(Value::Str),
            Some(b'[') => self.parse_array(depth),
            Some(b'{') => self.parse_object(depth),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.parse_number(),
            Some(b) => Err(Error::at(
                format!("unexpected character `{}`", b as char),
                self.pos,
            )),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(Error::at(format!("expected `{word}`"), self.pos))
        }
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.peek() {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::at("invalid number", start))?;
        if !is_float {
            if let Ok(n) = text.parse::<u64>() {
                return Ok(Value::U64(n));
            }
            if let Ok(n) = text.parse::<i64>() {
                return Ok(Value::I64(n));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::at(format!("invalid number `{text}`"), start))
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            match self.peek() {
                None => return Err(Error::at("unterminated string", self.pos)),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            let code = self.parse_hex4(start)?;
                            // Surrogate pairs: decode or reject; lone
                            // surrogates are corruption.
                            let c = if (0xD800..0xDC00).contains(&code) {
                                if self.peek() == Some(b'\\') {
                                    self.pos += 1;
                                    self.expect(b'u')?;
                                    let low = self.parse_hex4(start)?;
                                    if !(0xDC00..0xE000).contains(&low) {
                                        return Err(Error::at("invalid surrogate pair", start));
                                    }
                                    let c = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
                                    char::from_u32(c)
                                        .ok_or(Error::at("invalid code point", start))?
                                } else {
                                    return Err(Error::at("lone surrogate", start));
                                }
                            } else {
                                char::from_u32(code)
                                    .ok_or(Error::at("invalid code point", start))?
                            };
                            out.push(c);
                            continue;
                        }
                        _ => return Err(Error::at("invalid escape", self.pos)),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (input is a &str, so
                    // boundaries are valid).
                    let rest = &self.bytes[self.pos..];
                    let s = unsafe { std::str::from_utf8_unchecked(rest) };
                    let c = s.chars().next().ok_or(Error::at("bad utf-8", self.pos))?;
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    fn parse_hex4(&mut self, err_at: usize) -> Result<u32, Error> {
        if self.pos + 4 > self.bytes.len() {
            return Err(Error::at("truncated \\u escape", err_at));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
            .map_err(|_| Error::at("invalid \\u escape", err_at))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| Error::at("invalid \\u escape", err_at))?;
        self.pos += 4;
        Ok(code)
    }

    fn parse_array(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Seq(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value(depth + 1)?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Seq(items));
                }
                _ => return Err(Error::at("expected `,` or `]`", self.pos)),
            }
        }
    }

    fn parse_object(&mut self, depth: usize) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Map(entries));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value(depth + 1)?;
            entries.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Map(entries));
                }
                _ => return Err(Error::at("expected `,` or `}`", self.pos)),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn scalar_round_trips() {
        assert_eq!(to_string(&42u64).unwrap(), "42");
        assert_eq!(from_str::<u64>("42").unwrap(), 42);
        assert_eq!(to_string(&-7i32).unwrap(), "-7");
        assert_eq!(from_str::<i32>("-7").unwrap(), -7);
        assert_eq!(to_string(&1.5f64).unwrap(), "1.5");
        assert_eq!(from_str::<f64>("1.5").unwrap(), 1.5);
        assert_eq!(to_string("a\"b\n").unwrap(), r#""a\"b\n""#);
        assert_eq!(from_str::<String>(r#""a\"b\n""#).unwrap(), "a\"b\n");
        assert_eq!(from_str::<Option<u8>>("null").unwrap(), None);
    }

    #[test]
    fn float_round_trip_is_exact() {
        for f in [0.1f64, 1e300, -2.5e-10, 1.0, 12345.678] {
            let s = to_string(&f).unwrap();
            assert_eq!(from_str::<f64>(&s).unwrap(), f, "via {s}");
        }
    }

    #[test]
    fn one_integer_is_float_free() {
        // 1.0 must keep its decimal point so it re-parses as f64.
        assert_eq!(to_string(&1.0f64).unwrap(), "1.0");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u32, 2, 3];
        let s = to_string(&v).unwrap();
        assert_eq!(s, "[1,2,3]");
        assert_eq!(from_str::<Vec<u32>>(&s).unwrap(), v);

        let mut m = BTreeMap::new();
        m.insert("k".to_string(), 9u64);
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"{"k":9}"#);
        assert_eq!(from_str::<BTreeMap<String, u64>>(&s).unwrap(), m);
    }

    #[test]
    fn integer_keyed_maps_round_trip() {
        let mut m = BTreeMap::new();
        m.insert(5u32, "x".to_string());
        let s = to_string(&m).unwrap();
        assert_eq!(s, r#"{"5":"x"}"#);
        assert_eq!(from_str::<BTreeMap<u32, String>>(&s).unwrap(), m);
    }

    #[test]
    fn pretty_output_is_indented_and_parses() {
        let v = vec![vec![1u8], vec![2, 3]];
        let s = to_string_pretty(&v).unwrap();
        assert!(s.contains("\n  ["));
        assert_eq!(from_str::<Vec<Vec<u8>>>(&s).unwrap(), v);
    }

    #[test]
    fn garbage_is_rejected_not_panicked() {
        for bad in [
            "",
            "{",
            "[1,",
            "\"abc",
            "{\"a\":}",
            "tru",
            "1e",
            "[1]x",
            "{\"a\" 1}",
            "\u{1}",
            "nul",
            "--1",
            "\"\\q\"",
            "\"\\u12\"",
            "\"\\ud800\"",
        ] {
            assert!(from_str::<Value>(bad).is_err(), "input {bad:?} must error");
        }
    }

    #[test]
    fn deep_nesting_errors_instead_of_overflowing() {
        let deep = "[".repeat(10_000);
        assert!(from_str::<Value>(&deep).is_err());
        let ok = format!("{}{}", "[".repeat(100), "]".repeat(100));
        assert!(from_str::<Value>(&ok).is_ok());
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(from_str::<String>(r#""\u0041""#).unwrap(), "A");
        assert_eq!(from_str::<String>(r#""\ud83d\ude00""#).unwrap(), "😀");
        assert_eq!(from_str::<String>("\"héllo\"").unwrap(), "héllo");
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(to_string(&f64::NAN).unwrap(), "null");
        assert_eq!(to_string(&f64::INFINITY).unwrap(), "null");
    }
}
